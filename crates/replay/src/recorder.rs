//! The dependence recorder (§4): a [`Support`] implementation that turns
//! engine transition events into a [`RecordingLog`].
//!
//! ## Edge sources, case by case
//!
//! | event | sink wait(s) recorded | soundness argument |
//! |---|---|---|
//! | `Conflict` | the coordination-derived `(thread, clock)` pairs | the responder bumped at a safe point after its last access (Figure 4(b)); a blocked thread bumped before publishing BLOCKED |
//! | `PessConflictingAcquire` | remote release clocks read after the CAS | deferred unlocking: an unlocked pessimistic state was flushed at a bump that precedes any clock value read afterwards (§4.2) |
//! | `RdShCreate` | the object's last-transition side-table entry, plus the global previous-RdSh-creation entry | the previous holder has performed only *reads* of the object since its recorded transition, so ordering after that transition covers every write; the creation chain makes Octet's counter-based fence reasoning explicit for replay |
//! | `Fence` | the creating entry of epoch `c` | the creation is (transitively) after every write that preceded the object becoming read-shared |
//! | monitor acquire | the previous releaser's `(thread, clock)` | the release bump is a PSRO |
//!
//! Each recorded transition also *bumps the acting thread's release clock*
//! and deposits `(thread, new clock)` in the object's side table, pinned at
//! the thread's current operation — that is what makes the side-table and
//! epoch entries usable as replayable sources.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use drink_core::support::{Support, SupportCx, TransitionEv};
use drink_runtime::{Event, MonitorId, ObjId, ThreadId};

use crate::log::{RecordingLog, ThreadLog};

/// Pack `(tid, clock)` into one word: clock in the low 47 bits, `tid + 1`
/// (17 bits, so `u16::MAX` fits) above it. Zero means "no entry yet".
const CLOCK_BITS: u32 = 47;
const CLOCK_MASK: u64 = (1 << CLOCK_BITS) - 1;

#[inline]
fn pack(t: ThreadId, clock: u64) -> u64 {
    debug_assert!(clock <= CLOCK_MASK, "release clock overflow");
    ((t.raw() as u64 + 1) << CLOCK_BITS) | clock
}

#[inline]
fn unpack(word: u64) -> Option<(ThreadId, u64)> {
    if word == 0 {
        None
    } else {
        Some((
            ThreadId::from_raw(((word >> CLOCK_BITS) - 1) as u16),
            word & CLOCK_MASK,
        ))
    }
}

struct RecorderShared {
    /// Per-thread logs. Mutex-protected but effectively thread-private
    /// (contended only at final collection).
    logs: Box<[Mutex<ThreadLog>]>,
    /// Per-object last-transition entry.
    side_table: Box<[AtomicU64]>,
    /// Last RdSh creation globally (the explicit form of Octet's
    /// monotonic-counter fence argument).
    rdsh_last: AtomicU64,
    /// RdSh epoch `c` → creating entry. Indexed sparsely; epochs are claimed
    /// from the global counter so a map is the simple, correct structure
    /// (creations are rare).
    rdsh_epochs: Mutex<std::collections::HashMap<u64, (ThreadId, u64)>>,
    /// The next epoch value allowed to deposit. Creations deposit in strict
    /// counter order (see `Support::PREPUBLISH`: epochs are claimed inside
    /// the Int window, so every claimed epoch is deposited and the order is
    /// total). This makes `rdsh_last` a counter-ordered chain, which is what
    /// lets a no-fence read (rdShCount ≥ c) rely on
    /// creation(c) → creation(c') → reader transitivity during replay.
    next_epoch: AtomicU64,
    name: &'static str,
}

/// The recorder. Cheap to clone (shared interior); pass one clone to the
/// engine as its `Support` and keep one to extract the log afterwards.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<RecorderShared>,
}

impl Recorder {
    /// A recorder for a runtime with `threads` thread slots and `objects`
    /// heap objects. `name` labels the configuration ("optimistic"/"hybrid");
    /// `first_epoch` is the first RdSh epoch value the run will claim
    /// (`rt.current_rdsh_count() + 1` on a fresh runtime).
    pub fn new(threads: usize, objects: usize, name: &'static str, first_epoch: u64) -> Self {
        Recorder {
            inner: Arc::new(RecorderShared {
                logs: (0..threads)
                    .map(|_| Mutex::new(ThreadLog::default()))
                    .collect::<Vec<_>>()
                    .into_boxed_slice(),
                side_table: (0..objects)
                    .map(|_| AtomicU64::new(0))
                    .collect::<Vec<_>>()
                    .into_boxed_slice(),
                rdsh_last: AtomicU64::new(0),
                rdsh_epochs: Mutex::new(std::collections::HashMap::new()),
                next_epoch: AtomicU64::new(first_epoch),
                name,
            }),
        }
    }

    /// A recorder sized for `rt`.
    pub fn for_runtime(rt: &drink_runtime::Runtime, name: &'static str) -> Self {
        Recorder::new(
            rt.config().max_threads,
            rt.heap().len(),
            name,
            rt.current_rdsh_count() + 1,
        )
    }

    /// Extract the recording. Call only after every mutator detached.
    pub fn into_log(self) -> RecordingLog {
        let inner = self.inner;
        RecordingLog {
            threads: inner.logs.iter().map(|m| m.lock().clone()).collect(),
            recorder: inner.name.to_string(),
        }
    }

    /// Bump `cx.t`'s release clock for a recorded *transition*, logging it in
    /// the post-wait stream (the transition is ordered after its own
    /// sources; see `log` module docs), and return the new clock value.
    fn bump_here(&self, cx: &SupportCx<'_>) -> u64 {
        let clock = cx.rt.control(cx.t).bump_release_clock();
        self.inner.logs[cx.t.index()]
            .lock()
            .push_transition_bump(cx.op);
        clock
    }

    fn wait_for(&self, cx: &SupportCx<'_>, src: ThreadId, clock: u64) {
        if src != cx.t && clock > 0 {
            self.inner.logs[cx.t.index()]
                .lock()
                .push_wait(cx.op, src, clock);
        }
    }

    /// Record this transition in the object's side table (and return the
    /// previous entry for edge generation).
    fn update_side_table(&self, cx: &SupportCx<'_>, obj: ObjId, clock: u64) -> Option<(ThreadId, u64)> {
        let prev = self.inner.side_table[obj.index()].swap(pack(cx.t, clock), Ordering::AcqRel);
        unpack(prev)
    }
}

impl Support for Recorder {
    // Side-table and epoch entries must be deposited before the new state is
    // observable, or a racing reader could record a stale edge.
    const PREPUBLISH: bool = true;

    fn on_transition(&self, cx: SupportCx<'_>, obj: ObjId, ev: TransitionEv<'_>) {
        match ev {
            TransitionEv::UpgradeOwn => {
                // RdEx(T) → WrEx(T) by the owner: no cross-thread ordering,
                // and any later access by another thread conflicts (and thus
                // coordinates), so no side-table refresh is needed either.
            }
            TransitionEv::PessLocalAcquire => {
                // Own-state read-lock: refresh the side table so a future
                // RdShCreate from this state orders after our writes.
                let clock = self.bump_here(&cx);
                self.update_side_table(&cx, obj, clock);
            }
            TransitionEv::Fence { c } => {
                if let Some(&(src, clock)) = self.inner.rdsh_epochs.lock().get(&c) {
                    self.wait_for(&cx, src, clock);
                }
            }
            TransitionEv::RdShCreate { prev_owner, c, .. } => {
                // Deposit strictly in counter order (epochs are claimed
                // inside the Int window under PREPUBLISH, so epoch `c − 1`
                // is either already deposited or about to be, with nothing
                // blocking its depositor).
                let mut spin = cx.rt.spinner("rdsh epoch chain order");
                while self.inner.next_epoch.load(Ordering::Acquire) != c {
                    spin.spin();
                }
                // Sink edges: the object's last transition (dominates the
                // previous exclusive holder's writes)...
                if let Some((src, clock)) = unpack(
                    self.inner.side_table[obj.index()].load(Ordering::Acquire),
                ) {
                    self.wait_for(&cx, src, clock);
                } else {
                    // No recorded transition yet: the previous holder may
                    // still have unpublished writes; order after its last
                    // flush conservatively.
                    let clock = cx.rt.control(prev_owner).release_clock();
                    self.wait_for(&cx, prev_owner, clock);
                }
                // ...and the previous RdSh creation (the counter chain; now
                // guaranteed to be creation(c − 1)).
                let prev_chain = self.inner.rdsh_last.load(Ordering::Acquire);
                if let Some((src, clock)) = unpack(prev_chain) {
                    self.wait_for(&cx, src, clock);
                }
                // Source side: register this creation.
                let clock = self.bump_here(&cx);
                self.update_side_table(&cx, obj, clock);
                self.inner.rdsh_epochs.lock().insert(c, (cx.t, clock));
                self.inner.rdsh_last.store(pack(cx.t, clock), Ordering::Release);
                self.inner.next_epoch.store(c + 1, Ordering::Release);
            }
            TransitionEv::Conflict { sources, .. }
            | TransitionEv::PessConflictingAcquire { sources, .. } => {
                for &(src, clock) in sources {
                    self.wait_for(&cx, src, clock);
                }
                let clock = self.bump_here(&cx);
                self.update_side_table(&cx, obj, clock);
            }
        }
        // Count one recorded-edge event per transition (coarse; the precise
        // edge count is in the log itself).
        let _ = Event::RecorderEdge;
    }

    fn on_release(&self, cx: SupportCx<'_>, _clock: u64) {
        // The engine already bumped the clock; mirror it into the log.
        self.inner.logs[cx.t.index()].lock().push_bump(cx.op);
    }

    fn on_responded(&self, cx: SupportCx<'_>, _clock: u64) {
        self.inner.logs[cx.t.index()].lock().push_bump(cx.op);
    }

    fn on_monitor_acquire(
        &self,
        cx: SupportCx<'_>,
        _m: MonitorId,
        prev: Option<(ThreadId, u64)>,
    ) {
        if let Some((src, clock)) = prev {
            self.wait_for(&cx, src, clock);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drink_runtime::{Runtime, RuntimeConfig};

    #[test]
    fn pack_unpack_roundtrip() {
        assert_eq!(unpack(0), None);
        for (t, c) in [(0u16, 0u64), (1, 1), (255, 1 << 40), (u16::MAX, 123)] {
            assert_eq!(unpack(pack(ThreadId(t), c)), Some((ThreadId(t), c)));
        }
    }

    #[test]
    fn release_and_respond_mirror_bumps_into_log() {
        let rt = Runtime::new(RuntimeConfig::default());
        let t = rt.register_thread();
        let rec = Recorder::new(4, 8, "test", 1);
        let cx = SupportCx { rt: &rt, t, op: 5 };
        rec.on_release(cx, 1);
        rec.on_responded(cx, 2);
        let log = rec.into_log();
        assert_eq!(log.threads[t.index()].sources_pre, vec![(5, 2)]);
    }

    #[test]
    fn conflict_records_waits_and_side_table_entry() {
        let rt = Runtime::new(RuntimeConfig::default());
        let t0 = rt.register_thread();
        let t1 = rt.register_thread();
        let rec = Recorder::new(4, 8, "test", 1);
        let o = ObjId(3);

        // t0's clock reached 7 through PSRO bumps (mirrored into its log so
        // the fabricated wait below is satisfiable).
        let cx0m = SupportCx { rt: &rt, t: t0, op: 0 };
        for _ in 0..7 {
            rec.on_release(cx0m, 0);
        }

        // t1 "transitions" o with an edge from t0 at clock 7.
        let cx1 = SupportCx { rt: &rt, t: t1, op: 2 };
        rec.on_transition(
            cx1,
            o,
            TransitionEv::Conflict {
                mode: drink_core::support::CoordMode::Explicit,
                sources: &[(t0, 7)],
                write: true,
            },
        );
        // A later RdShCreate by t0 must order after t1's transition.
        let cx0 = SupportCx { rt: &rt, t: t0, op: 9 };
        rec.on_transition(
            cx0,
            o,
            TransitionEv::RdShCreate {
                prev_owner: t1,
                c: 1,
                pess: false,
            },
        );

        let log = rec.into_log();
        assert_eq!(log.threads[t1.index()].sinks[0].waits, vec![(t0, 7)]);
        // t1 bumped once (its transition); t0's create waits for that bump.
        assert_eq!(log.threads[t1.index()].total_bumps(), 1);
        assert_eq!(log.threads[t0.index()].sinks[0].waits, vec![(t1, 1)]);
        assert_eq!(log.validate(), Ok(()));
    }

    #[test]
    fn fence_waits_on_epoch_creator() {
        let rt = Runtime::new(RuntimeConfig::default());
        let t0 = rt.register_thread();
        let t1 = rt.register_thread();
        let rec = Recorder::new(4, 8, "test", 1);
        let o = ObjId(0);

        let cx0 = SupportCx { rt: &rt, t: t0, op: 4 };
        rec.on_transition(
            cx0,
            o,
            TransitionEv::RdShCreate {
                prev_owner: t1,
                c: 1,
                pess: false,
            },
        );
        let cx1 = SupportCx { rt: &rt, t: t1, op: 6 };
        rec.on_transition(cx1, o, TransitionEv::Fence { c: 1 });

        let log = rec.into_log();
        // t0's creation bumped its clock to 1; t1's fence waits for it.
        assert_eq!(log.threads[t1.index()].sinks[0].waits, vec![(t0, 1)]);
        assert_eq!(log.validate(), Ok(()));
    }

    #[test]
    fn rdsh_chain_links_creations() {
        let rt = Runtime::new(RuntimeConfig::default());
        let t0 = rt.register_thread();
        let t1 = rt.register_thread();
        let rec = Recorder::new(4, 8, "test", 1);

        let cx0 = SupportCx { rt: &rt, t: t0, op: 1 };
        rec.on_transition(
            cx0,
            ObjId(0),
            TransitionEv::RdShCreate { prev_owner: t1, c: 1, pess: false },
        );
        let cx1 = SupportCx { rt: &rt, t: t1, op: 3 };
        rec.on_transition(
            cx1,
            ObjId(1),
            TransitionEv::RdShCreate { prev_owner: t0, c: 2, pess: false },
        );
        let log = rec.into_log();
        // The second creation (t1) waits on the first creation's bump (t0@1)
        // via both the side-table-miss fallback and the chain.
        assert!(log.threads[t1.index()].sinks[0]
            .waits
            .contains(&(t0, 1)));
        assert_eq!(log.validate(), Ok(()));
    }

    #[test]
    fn monitor_acquire_records_sync_edge() {
        let rt = Runtime::new(RuntimeConfig::default());
        let t0 = rt.register_thread();
        let t1 = rt.register_thread();
        let rec = Recorder::new(4, 8, "test", 1);
        // Pretend t0 released at clock 3 — but a wait is only valid if t0's
        // log shows 3 bumps; mirror them first.
        let cx0 = SupportCx { rt: &rt, t: t0, op: 0 };
        rec.on_release(cx0, 1);
        rec.on_release(cx0, 2);
        rec.on_release(cx0, 3);
        let cx1 = SupportCx { rt: &rt, t: t1, op: 2 };
        rec.on_monitor_acquire(cx1, MonitorId(0), Some((t0, 3)));
        let log = rec.into_log();
        assert_eq!(log.threads[t1.index()].sinks[0].waits, vec![(t0, 3)]);
        assert_eq!(log.validate(), Ok(()));
    }
}
