//! # drink-replay: multithreaded record & replay on dependence tracking
//!
//! The paper's first runtime-support client (§4): a **dependence recorder**
//! that logs happens-before edges implying all of an execution's cross-thread
//! dependences, and a **replayer** that re-executes the program enforcing
//! exactly those edges.
//!
//! * [`Recorder`] is a [`drink_core::support::Support`] implementation;
//!   attach it to an [`OptimisticEngine`](drink_core::prelude::OptimisticEngine)
//!   for the *optimistic recorder* or to a
//!   [`HybridEngine`](drink_core::prelude::HybridEngine) for the paper's
//!   *hybrid recorder*. The hybrid recorder exploits deferred unlocking: for
//!   pessimistic conflicting transitions it names edge sources by reading
//!   the previous holder's **release clock** — no communication — which is
//!   the §4.2 contribution.
//! * [`RecordingLog`] is the serializable two-sided schedule.
//! * [`ReplayEngine`] replays a log through the same workload driver,
//!   eliding program synchronization (§7.6).
//!
//! See `tests/` at the workspace root for end-to-end determinism proofs:
//! racy workloads recorded and replayed to bit-identical final heaps.

pub mod log;
pub mod recorder;
pub mod replayer;

pub use log::{RecordingLog, SinkEntry, ThreadLog};
pub use recorder::Recorder;
pub use replayer::ReplayEngine;
