//! The deterministic replayer (§4).
//!
//! [`ReplayEngine`] implements `Tracker`, so workloads replay through the
//! exact driver code that recorded them. No states are tracked during
//! replay; each thread walks its deterministic operation sequence and, at
//! every operation:
//!
//! 1. applies the **clock bumps** the log pins before this operation,
//! 2. performs the **sink waits** pinned at this operation (spinning until
//!    each source thread's replay clock reaches the recorded value),
//! 3. executes the access.
//!
//! Program synchronization is **elided** by default — monitor operations
//! perform only their pinned bumps/waits, never touching the monitor. The
//! recorded sync edges (release → acquire) plus the dependence edges fully
//! order the critical sections, which is why the paper's replayer can even
//! *outperform* the baseline for lock-dominated programs (§7.6, pjbb2005).
//! Passing `elide_sync = false` re-executes the real monitor operations,
//! for the ablation of that claim.
//!
//! Replay clocks reuse [`drink_runtime::ThreadControl`]'s release clock.

use std::sync::Arc;

use drink_core::engine::Tracker;
use drink_core::tstate::OwnedByThread;
use drink_runtime::{Event, MonitorId, NoHooks, ObjId, Runtime, ThreadId};

use crate::log::RecordingLog;

struct ReplayLocal {
    /// Deterministic op position (same counting rule as the engines).
    op: u64,
    /// Cursor into the thread's pre-wait source entries.
    pre_idx: usize,
    /// Cursor into the thread's post-wait source entries.
    post_idx: usize,
    /// Cursor into the thread's sink entries.
    sink_idx: usize,
    stats: drink_runtime::LocalStats,
}

/// A log-driven replay engine.
pub struct ReplayEngine {
    rt: Arc<Runtime>,
    log: RecordingLog,
    per_thread: Box<[OwnedByThread<ReplayLocal>]>,
    elide_sync: bool,
}

impl ReplayEngine {
    /// Replay `log` on `rt` with program synchronization elided.
    pub fn new(rt: Arc<Runtime>, log: RecordingLog) -> Self {
        ReplayEngine::with_options(rt, log, true)
    }

    /// Replay with explicit control over synchronization elision.
    pub fn with_options(rt: Arc<Runtime>, log: RecordingLog, elide_sync: bool) -> Self {
        log.validate().expect("recording log is malformed");
        let n = rt.config().max_threads;
        assert!(
            log.threads.len() <= n,
            "log has more threads than the runtime"
        );
        ReplayEngine {
            rt,
            log,
            per_thread: (0..n)
                .map(|_| {
                    OwnedByThread::new(ReplayLocal {
                        op: 0,
                        pre_idx: 0,
                        post_idx: 0,
                        sink_idx: 0,
                        stats: drink_runtime::LocalStats::new(),
                    })
                })
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            elide_sync,
        }
    }

    /// Apply everything pinned at the current position, in three phases (see
    /// the `log` module docs for why the order matters):
    ///
    /// 1. **pre-wait bumps** — yield-point bumps a thread performed while
    ///    (or before) waiting; applying them first keeps mutual mid-operation
    ///    coordination deadlock-free;
    /// 2. **sink waits**;
    /// 3. **post-wait bumps** — transition bumps, which transitively stand
    ///    for this operation's own sources and so must not become visible
    ///    before the waits are satisfied.
    fn sync_at_position(&self, t: ThreadId, local: &mut ReplayLocal) {
        let tl = &self.log.threads[t.index()];
        // 1. Pre-wait bumps pinned at or before the current op.
        while let Some(&(op, n)) = tl.sources_pre.get(local.pre_idx) {
            if op > local.op {
                break;
            }
            for _ in 0..n {
                self.rt.control(t).bump_release_clock();
            }
            local.pre_idx += 1;
        }
        // 2. Waits pinned at the current op.
        while let Some(entry) = tl.sinks.get(local.sink_idx) {
            if entry.op > local.op {
                break;
            }
            for &(src, clock) in &entry.waits {
                let ctl = self.rt.control(src);
                if ctl.release_clock() < clock {
                    local.stats.bump(Event::ReplayWait);
                    let mut spin = self.rt.spinner("replay source clock");
                    while ctl.release_clock() < clock {
                        spin.spin();
                    }
                }
            }
            local.sink_idx += 1;
        }
        // 3. Post-wait (transition) bumps pinned at or before the current op.
        while let Some(&(op, n)) = tl.sources_post.get(local.post_idx) {
            if op > local.op {
                break;
            }
            for _ in 0..n {
                self.rt.control(t).bump_release_clock();
            }
            local.post_idx += 1;
        }
    }

    /// Total replay waits that actually spun (diagnostic).
    pub fn rt_handle(&self) -> &Arc<Runtime> {
        &self.rt
    }
}

impl Tracker for ReplayEngine {
    fn rt(&self) -> &Arc<Runtime> {
        &self.rt
    }

    fn name(&self) -> &'static str {
        if self.elide_sync {
            "replay"
        } else {
            "replay+sync"
        }
    }

    fn attach(&self) -> ThreadId {
        let t = self.rt.register_thread();
        assert!(
            t.index() < self.log.threads.len(),
            "more replay threads than recorded threads"
        );
        self.per_thread[t.index()].reset_owner();
        // SAFETY: we are the thread that just claimed this slot.
        unsafe {
            *self.per_thread[t.index()].get() = ReplayLocal {
                op: 0,
                pre_idx: 0,
                post_idx: 0,
                sink_idx: 0,
                stats: drink_runtime::LocalStats::new(),
            };
        }
        t
    }

    fn detach(&self, t: ThreadId) {
        // SAFETY: Tracker contract — called from the attached thread.
        let local = unsafe { self.per_thread[t.index()].get() };
        // Apply trailing bumps (sources pinned at the final position, e.g.
        // the recorded run's detach flush).
        let tl = &self.log.threads[t.index()];
        while let Some(&(_, n)) = tl.sources_pre.get(local.pre_idx) {
            for _ in 0..n {
                self.rt.control(t).bump_release_clock();
            }
            local.pre_idx += 1;
        }
        while let Some(&(_, n)) = tl.sources_post.get(local.post_idx) {
            for _ in 0..n {
                self.rt.control(t).bump_release_clock();
            }
            local.post_idx += 1;
        }
        assert_eq!(
            local.sink_idx,
            tl.sinks.len(),
            "replay of {t} ended with unconsumed sink entries — op streams diverged"
        );
        local.stats.merge_into(self.rt.stats());
    }

    #[inline]
    fn read(&self, t: ThreadId, o: ObjId) -> u64 {
        // SAFETY: attached thread.
        let local = unsafe { self.per_thread[t.index()].get() };
        self.sync_at_position(t, local);
        let v = self.rt.obj(o).data_read();
        local.stats.bump(Event::Read);
        local.op += 1;
        v
    }

    #[inline]
    fn write(&self, t: ThreadId, o: ObjId, v: u64) {
        // SAFETY: attached thread.
        let local = unsafe { self.per_thread[t.index()].get() };
        self.sync_at_position(t, local);
        self.rt.obj(o).data_write(v);
        local.stats.bump(Event::Write);
        local.op += 1;
    }

    fn alloc_init(&self, _o: ObjId, _owner: ThreadId) {}

    #[inline]
    fn safepoint(&self, _t: ThreadId) {}

    fn lock(&self, t: ThreadId, m: MonitorId) {
        // SAFETY: attached thread.
        let local = unsafe { self.per_thread[t.index()].get() };
        self.sync_at_position(t, local);
        if !self.elide_sync {
            self.rt.monitor_acquire(m, t, &NoHooks);
        }
        local.op += 1;
    }

    fn unlock(&self, t: ThreadId, m: MonitorId) {
        // SAFETY: attached thread.
        let local = unsafe { self.per_thread[t.index()].get() };
        self.sync_at_position(t, local);
        if !self.elide_sync {
            self.rt.monitor_release(m, t, &NoHooks);
        }
        local.op += 1;
    }

    fn wait(&self, t: ThreadId, m: MonitorId) {
        // Monitor waits are replayed as their recorded edges; the park/wake
        // is pure synchronization and is elided like lock/unlock.
        let local = unsafe { self.per_thread[t.index()].get() };
        self.sync_at_position(t, local);
        if !self.elide_sync {
            // A real wait would need its notify replayed too; recorded edges
            // already order us after the notifier, so a re-acquire suffices.
            self.rt.monitor_acquire(m, t, &NoHooks);
            self.rt.monitor_release(m, t, &NoHooks);
        }
        local.op += 1;
    }

    fn notify_all(&self, _t: ThreadId, _m: MonitorId) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{RecordingLog, SinkEntry};
    use drink_runtime::RuntimeConfig;

    #[test]
    #[should_panic(expected = "malformed")]
    fn malformed_log_is_rejected() {
        let mut log = RecordingLog::with_threads(2, "x");
        log.threads[1].sinks.push(SinkEntry {
            op: 0,
            waits: vec![(ThreadId(0), 5)], // T0 never bumps
        });
        let rt = Arc::new(Runtime::new(RuntimeConfig::default()));
        let _ = ReplayEngine::new(rt, log);
    }

    #[test]
    fn replay_enforces_recorded_order() {
        // T1's first write must wait for T0's bump at its op 1.
        let mut log = RecordingLog::with_threads(2, "x");
        log.threads[0].push_bump(1);
        log.threads[1].push_wait(0, ThreadId(0), 1);

        let rt = Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(2)
        .heap_objects(4)
        .monitors(1)
        .build()));
        let e = ReplayEngine::new(rt, log);
        let o = ObjId(0);

        std::thread::scope(|s| {
            for _ in 0..2 {
                let er = &e;
                s.spawn(move || {
                    // Roles are decided by the attached id, so the test does
                    // not depend on which OS thread registers first.
                    let t = er.attach();
                    if t == ThreadId(0) {
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        er.write(t, o, 1); // op 0: no pins
                        er.write(t, o, 10); // op 1: bump BEFORE executing → releases T1
                    } else {
                        // Waits until T0's clock reaches 1, then writes 2.
                        er.write(t, o, 2);
                    }
                    er.detach(t);
                });
            }
        });
        // T1's write happened after T0's op-1 bump; both writes to o raced
        // but the recorded edge means T1 observed T0's op-0 write. The final
        // value is whichever of {2, 10} lost the race — both orders keep the
        // edge satisfied; the hard guarantee is the wait actually spun:
        assert!(e.rt().stats().get(Event::ReplayWait) >= 1);
    }

    #[test]
    fn detach_applies_trailing_bumps() {
        let mut log = RecordingLog::with_threads(2, "x");
        log.threads[0].push_bump(0); // pinned at op 0, but T0 executes no ops
        log.threads[1].push_wait(0, ThreadId(0), 1);

        let rt = Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(2)
        .heap_objects(4)
        .monitors(1)
        .build()));
        let e = ReplayEngine::new(rt, log);
        std::thread::scope(|s| {
            for _ in 0..2 {
                let er = &e;
                s.spawn(move || {
                    let t = er.attach();
                    if t == ThreadId(0) {
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        er.detach(t); // trailing bump applied here
                    } else {
                        er.read(t, ObjId(0));
                        er.detach(t);
                    }
                });
            }
        });
    }
}
