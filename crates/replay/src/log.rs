//! The recording log: a two-sided, per-thread happens-before schedule.
//!
//! The recorder (§4) reduces an execution's cross-thread dependences to a
//! set of **edges** `(source thread, clock value) → (sink thread, op)`. The
//! log stores the two sides separately:
//!
//! * **source entries** `(op, bumps)`, in two streams with different replay
//!   semantics:
//!   - **pre-wait bumps** (`sources_pre`) happened at *yield points*: PSROs,
//!     responding safe points, blocking safe points. A thread performs these
//!     while (or before) it waits, so during replay they are applied before
//!     the operation's own sink waits — two threads that coordinated with
//!     each other mid-operation would otherwise deadlock;
//!   - **post-wait bumps** (`sources_post`) happened at *recorded
//!     transitions* (side-table and RdSh-epoch deposits): the transition
//!     completed only after its own happens-before sources, so its bump must
//!     not become visible until the operation's sink waits are satisfied —
//!     otherwise a third thread could ride the transition's edge past the
//!     dependences it transitively stands for.
//!
//!   Within one operation a thread's yield bumps always precede its
//!   transition bump (responses happen while coordinating, the transition
//!   completes after), so replaying pre-then-waits-then-post preserves each
//!   thread's recorded bump order and hence the meaning of waited values.
//!   All pins are at-or-before the operation that was executing, satisfying
//!   the paper's "no later than T1's current execution point" requirement
//!   (Figure 4(a));
//!
//! * **sink entries** `(op, [(source thread, clock), ...])`: before executing
//!   `op` (after pre-wait bumps), the thread waits until each named source
//!   thread's replay clock reaches the recorded value.

use drink_runtime::ThreadId;
use serde::{Deserialize, Serialize};

/// One sink record: waits to perform before executing `op`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SinkEntry {
    /// The operation index this wait guards.
    pub op: u64,
    /// `(source thread, clock value)` pairs to wait for.
    pub waits: Vec<(ThreadId, u64)>,
}

/// One thread's log.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadLog {
    /// Yield-point clock bumps (applied before the op's waits),
    /// nondecreasing in `op`.
    pub sources_pre: Vec<(u64, u32)>,
    /// Transition clock bumps (applied after the op's waits),
    /// nondecreasing in `op`.
    pub sources_post: Vec<(u64, u32)>,
    /// Waits pinned to operation indices, nondecreasing in `op`.
    pub sinks: Vec<SinkEntry>,
}

fn push_into(stream: &mut Vec<(u64, u32)>, op: u64) {
    if let Some(last) = stream.last_mut() {
        debug_assert!(last.0 <= op, "source pins must be nondecreasing");
        if last.0 == op {
            last.1 += 1;
            return;
        }
    }
    stream.push((op, 1));
}

impl ThreadLog {
    /// Record one yield-point bump at `op`.
    pub fn push_bump(&mut self, op: u64) {
        push_into(&mut self.sources_pre, op);
    }

    /// Record one transition bump at `op`.
    pub fn push_transition_bump(&mut self, op: u64) {
        push_into(&mut self.sources_post, op);
    }

    /// Record a wait for `(src, clock)` before `op` (coalescing per op).
    pub fn push_wait(&mut self, op: u64, src: ThreadId, clock: u64) {
        if let Some(last) = self.sinks.last_mut() {
            debug_assert!(last.op <= op, "sink pins must be nondecreasing");
            if last.op == op {
                // Keep only the strongest wait per (op, src).
                if let Some(w) = last.waits.iter_mut().find(|(t, _)| *t == src) {
                    w.1 = w.1.max(clock);
                } else {
                    last.waits.push((src, clock));
                }
                return;
            }
        }
        self.sinks.push(SinkEntry {
            op,
            waits: vec![(src, clock)],
        });
    }

    /// Total bumps recorded (the thread's final replay-clock value).
    pub fn total_bumps(&self) -> u64 {
        self.sources_pre
            .iter()
            .chain(self.sources_post.iter())
            .map(|&(_, n)| n as u64)
            .sum()
    }

    /// Total individual waits recorded.
    pub fn total_waits(&self) -> usize {
        self.sinks.iter().map(|s| s.waits.len()).sum()
    }
}

/// A complete recording: one [`ThreadLog`] per mutator, plus run metadata.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordingLog {
    /// Per-thread logs, indexed by `ThreadId`.
    pub threads: Vec<ThreadLog>,
    /// Name of the recorder configuration that produced this log
    /// ("optimistic" or "hybrid").
    pub recorder: String,
}

impl RecordingLog {
    /// A log for `n` threads.
    pub fn with_threads(n: usize, recorder: &str) -> Self {
        RecordingLog {
            threads: (0..n).map(|_| ThreadLog::default()).collect(),
            recorder: recorder.to_string(),
        }
    }

    /// Total happens-before edges (waits) across all threads — the paper's
    /// "number of recorded dependences".
    pub fn total_edges(&self) -> usize {
        self.threads.iter().map(|t| t.total_waits()).sum()
    }

    /// Validate structural invariants: monotone pins, wait targets in range,
    /// and every waited-for clock value ≤ the source thread's total bumps
    /// (otherwise replay would hang). Returns a description of the first
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        let totals: Vec<u64> = self.threads.iter().map(|t| t.total_bumps()).collect();
        for (tid, tl) in self.threads.iter().enumerate() {
            for stream in [&tl.sources_pre, &tl.sources_post] {
                let mut prev = 0;
                for &(op, n) in stream {
                    if op < prev {
                        return Err(format!("T{tid}: source pins regress at op {op}"));
                    }
                    if n == 0 {
                        return Err(format!("T{tid}: zero-bump source entry at op {op}"));
                    }
                    prev = op;
                }
            }
            let mut prev = 0;
            for s in &tl.sinks {
                if s.op < prev {
                    return Err(format!("T{tid}: sink pins regress at op {}", s.op));
                }
                prev = s.op;
                for &(src, clock) in &s.waits {
                    if src.index() >= self.threads.len() {
                        return Err(format!("T{tid}: wait on unknown thread {src}"));
                    }
                    if src.index() == tid {
                        return Err(format!("T{tid}: self-wait at op {}", s.op));
                    }
                    if clock > totals[src.index()] {
                        return Err(format!(
                            "T{tid}: waits for {src} clock {clock} but {src} only bumps {} times",
                            totals[src.index()]
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bumps_coalesce_per_op() {
        let mut tl = ThreadLog::default();
        tl.push_bump(3);
        tl.push_bump(3);
        tl.push_bump(5);
        tl.push_transition_bump(5);
        assert_eq!(tl.sources_pre, vec![(3, 2), (5, 1)]);
        assert_eq!(tl.sources_post, vec![(5, 1)]);
        assert_eq!(tl.total_bumps(), 4);
    }

    #[test]
    fn waits_keep_strongest_per_source() {
        let mut tl = ThreadLog::default();
        tl.push_wait(2, ThreadId(1), 5);
        tl.push_wait(2, ThreadId(1), 3); // weaker: absorbed
        tl.push_wait(2, ThreadId(2), 1);
        tl.push_wait(4, ThreadId(1), 6);
        assert_eq!(tl.sinks.len(), 2);
        assert_eq!(tl.sinks[0].waits, vec![(ThreadId(1), 5), (ThreadId(2), 1)]);
        assert_eq!(tl.total_waits(), 3);
    }

    #[test]
    fn validate_accepts_wellformed_log() {
        let mut log = RecordingLog::with_threads(2, "hybrid");
        log.threads[0].push_bump(1);
        log.threads[1].push_wait(0, ThreadId(0), 1);
        assert_eq!(log.validate(), Ok(()));
        assert_eq!(log.total_edges(), 1);
    }

    #[test]
    fn validate_rejects_unsatisfiable_wait() {
        let mut log = RecordingLog::with_threads(2, "opt");
        log.threads[1].push_wait(0, ThreadId(0), 1); // T0 never bumps
        assert!(log.validate().is_err());
    }

    #[test]
    fn validate_rejects_self_wait_and_bad_target() {
        let mut log = RecordingLog::with_threads(2, "opt");
        log.threads[0].push_bump(0);
        log.threads[0].push_wait(1, ThreadId(0), 1);
        assert!(log.validate().unwrap_err().contains("self-wait"));

        let mut log = RecordingLog::with_threads(1, "opt");
        log.threads[0].sinks.push(SinkEntry {
            op: 0,
            waits: vec![(ThreadId(9), 1)],
        });
        assert!(log.validate().unwrap_err().contains("unknown thread"));
    }

    #[test]
    fn log_roundtrips_through_serde() {
        let mut log = RecordingLog::with_threads(2, "hybrid");
        log.threads[0].push_bump(1);
        log.threads[1].push_wait(3, ThreadId(0), 1);
        let json = serde_json::to_string(&log).unwrap();
        let back: RecordingLog = serde_json::from_str(&json).unwrap();
        assert_eq!(log, back);
    }
}
