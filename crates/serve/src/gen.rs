//! Deterministic open-loop traffic generation.
//!
//! The serve bench models a *service*, not a loop: requests arrive on their
//! own schedule (Poisson, at a configured offered rate) whether or not the
//! store has kept up, and each worker tracks both **service time** (dequeue →
//! completion) and **sojourn time** (arrival → completion, queueing included
//! — the latency a simulated user actually observes; DESIGN.md §15). All
//! randomness comes from [`SplitMix64`] streams seeded per worker, so a
//! (seed, worker) pair names one exact request sequence — the property the
//! chaos oracle's cross-engine comparisons and the replay-style unit tests
//! lean on.

/// SplitMix64: the 64-bit mixing PRNG used for every serve-side random
/// choice. Tiny state, full-period, and — unlike the workspace `rand` shim's
/// `SmallRng` — a stable published algorithm, so the determinism tests can
/// pin exact expected outputs.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Stream seeded by `seed` (any value, including 0, is a valid stream).
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// One exponential inter-arrival gap, in nanoseconds, for a Poisson process
/// of `rate_rps` requests per second: `-ln(U) / rate`. Never returns 0 (two
/// requests may be arbitrarily close, but the arrival clock must advance so
/// the open-loop schedule stays strictly ordered).
pub fn exp_interarrival_ns(rng: &mut SplitMix64, rate_rps: f64) -> u64 {
    debug_assert!(rate_rps > 0.0);
    // 1 - U ∈ (0, 1]: ln is finite, and ln(1) = 0 maps to the `.max(1)` arm.
    let u = 1.0 - rng.next_f64();
    ((-u.ln() / rate_rps) * 1e9) as u64 + 1
}

/// Zipfian key-popularity sampler: key `k` (0-based rank) is drawn with
/// probability proportional to `1 / (k + 1)^s`. Built once per run as a
/// normalized cumulative table; sampling is a binary search, so a worker's
/// request loop costs O(log keys) per draw with no floating-point
/// accumulation drift across draws.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Sampler over `n ≥ 1` keys with exponent `s` (the paper-standard
    /// skews are 0.9 / 1.1 / 1.3; `s = 0` degenerates to uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "zipf needs at least one key");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        // Guard the binary search against the last entry rounding below 1.0.
        *cdf.last_mut().unwrap() = 1.0;
        Zipf { cdf }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the sampler covers no choice (never constructible; kept so
    /// `len` has the conventional companion).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Map a uniform `u ∈ [0, 1)` to a key rank. Deterministic in `u`, so
    /// callers can derive `u` from a *user id* hash and get a fixed
    /// user→key preference.
    pub fn sample_u01(&self, u: f64) -> usize {
        debug_assert!((0.0..=1.0).contains(&u));
        self.cdf.partition_point(|&c| c <= u).min(self.cdf.len() - 1)
    }

    /// Draw a key rank from `rng`.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        self.sample_u01(rng.next_f64())
    }
}

/// Offered-load bookkeeping for one worker: every request is *arrived*
/// exactly once and *completed* at most once, so at every instant
/// `arrivals == completions + in_flight`. [`ServeResult`](crate::ServeResult)
/// aggregates these and the smoke/chaos checks assert the balance — a
/// miscounted (dropped or double-counted) request breaks it immediately.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadAccounting {
    /// Requests whose scheduled arrival time has passed and were admitted.
    pub arrivals: u64,
    /// Requests fully served.
    pub completions: u64,
    /// Admitted but not yet completed.
    pub in_flight: u64,
}

impl LoadAccounting {
    /// Admit one request.
    pub fn arrive(&mut self) {
        self.arrivals += 1;
        self.in_flight += 1;
    }

    /// Finish one admitted request.
    pub fn complete(&mut self) {
        assert!(self.in_flight > 0, "completion without a matching arrival");
        self.in_flight -= 1;
        self.completions += 1;
    }

    /// The conservation law of open-loop accounting.
    pub fn balanced(&self) -> bool {
        self.arrivals == self.completions + self.in_flight
    }

    /// Fold another worker's tallies into this one.
    pub fn merge(&mut self, other: &LoadAccounting) {
        self.arrivals += other.arrivals;
        self.completions += other.completions;
        self.in_flight += other.in_flight;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn splitmix_streams_are_deterministic_and_seed_disjoint() {
        let mut a = SplitMix64::new(0x5eed);
        let mut b = SplitMix64::new(0x5eed);
        let first: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let again: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(first, again, "same seed, same stream");

        let mut c = SplitMix64::new(0x5eee);
        let other: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_ne!(first, other, "adjacent seeds diverge immediately");

        // Pin the published algorithm: seed 0's first output is the
        // finalizer applied to the golden-ratio increment.
        assert_eq!(SplitMix64::new(0).next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn poisson_interarrivals_have_the_configured_mean() {
        let mut rng = SplitMix64::new(42);
        let rate = 10_000.0; // 10k rps → 100 µs mean gap
        let n = 200_000u64;
        let total: u64 = (0..n).map(|_| exp_interarrival_ns(&mut rng, rate)).sum();
        let mean = total as f64 / n as f64;
        let expect = 1e9 / rate;
        assert!(
            (mean - expect).abs() < expect * 0.02,
            "mean gap {mean:.0}ns vs expected {expect:.0}ns"
        );
        // And determinism: the same seed reproduces the same schedule.
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(
                exp_interarrival_ns(&mut a, rate),
                exp_interarrival_ns(&mut b, rate)
            );
        }
    }

    #[test]
    fn zipf_is_deterministic_and_rank_ordered() {
        for s in [0.9, 1.1, 1.3] {
            let z = Zipf::new(64, s);
            let mut rng = SplitMix64::new(9);
            let mut counts = vec![0u64; 64];
            for _ in 0..100_000 {
                counts[z.sample(&mut rng)] += 1;
            }
            assert!(
                counts[0] > counts[8] && counts[8] > counts[32],
                "s={s}: popularity must fall with rank: {:?}",
                &counts[..4]
            );
            assert!(counts[0] as f64 > 100_000.0 / 64.0 * 2.0, "s={s}: head is hot");

            // Same seed → identical draw sequence.
            let mut a = SplitMix64::new(123);
            let mut b = SplitMix64::new(123);
            for _ in 0..100 {
                assert_eq!(z.sample(&mut a), z.sample(&mut b));
            }
        }
        // u01 mapping is monotone: larger u never maps to a more popular key.
        let z = Zipf::new(16, 1.1);
        assert_eq!(z.sample_u01(0.0), 0);
        assert!(z.sample_u01(0.999) >= z.sample_u01(0.5));
    }

    proptest! {
        /// Conservation: for an arbitrary interleaving of arrivals and
        /// completions (completions only against in-flight requests), the
        /// accounting always balances and never loses a request.
        #[test]
        fn offered_load_accounting_balances(seed in any::<u64>(), steps in 1usize..400) {
            let mut rng = SplitMix64::new(seed);
            let mut acct = LoadAccounting::default();
            for _ in 0..steps {
                if acct.in_flight > 0 && rng.next_u64() % 2 == 0 {
                    acct.complete();
                } else {
                    acct.arrive();
                }
                prop_assert!(acct.balanced());
            }
            // Drain: after completing everything in flight, arrivals ==
            // completions exactly.
            while acct.in_flight > 0 {
                acct.complete();
            }
            prop_assert!(acct.balanced());
            prop_assert_eq!(acct.arrivals, acct.completions);
        }
    }
}
