//! `drink-serve`: an open-loop KV/session-store macro-benchmark.
//!
//! The microbenchmarks (`hotpath`, `contention`) measure tracked operations
//! in a closed loop: each thread issues the next access the moment the
//! previous one retires, so they report *capacity*. A service does not work
//! like that — requests arrive on their own clock, and when the store falls
//! behind, latency (not throughput) absorbs the damage. This crate drives
//! the tracking substrate the way a server would:
//!
//! * **open-loop Poisson arrivals** at a configured aggregate offered rate,
//!   split across `workers` worker sessions (DESIGN.md §15 explains why the
//!   gated latency metric is *sojourn* — arrival → completion — rather than
//!   service time);
//! * **Zipfian key popularity** (`s ∈ {0.9, 1.1, 1.3}` are the standard
//!   skews) derived from a simulated *user* population in the millions:
//!   each request belongs to a user, users are sharded onto workers by
//!   residue, and a user's key preference is a pure function of the user
//!   id — so the key stream is deterministic in `(seed, worker)`;
//! * a configurable read/write mix over a [`KvStore`] whose every shared
//!   access goes through `Session::read` / `Session::write` /
//!   `Session::synchronized`;
//! * engine selection **at runtime** through the erased
//!   [`EngineKind::build`] path: the store and this driver contain zero
//!   per-engine match arms.
//!
//! Latencies flow through the runtime's log₂ histogram plumbing
//! ([`LatencyKind::ServeService`] / [`LatencyKind::ServeSojourn`]), so the
//! schema-v5 bench report rows are derived the same way as every other
//! percentile metric in the suite.

pub mod gen;
pub mod store;

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use drink_core::engine::AnyEngine;
use drink_core::{EngineKind, Session, Tracker};
use drink_runtime::stats::LatencyKind;
use drink_runtime::{Runtime, RuntimeConfig, StatsReport};

pub use gen::{exp_interarrival_ns, LoadAccounting, SplitMix64, Zipf};
pub use store::{GetOutcome, KvStore};

/// Everything a serve run needs to know. Construct with
/// [`ServeConfig::default`] and override fields; [`validate`]
/// (ServeConfig::validate) is called by the drivers.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Which tracking engine serves the store.
    pub engine: EngineKind,
    /// Worker sessions (mutator threads) the user population is mapped onto.
    pub workers: usize,
    /// Key-space size (tracked objects).
    pub keys: usize,
    /// Monitors guarding the PUT paths.
    pub monitors: usize,
    /// Simulated user population; users are sharded onto workers by
    /// `user % workers`.
    pub users: u64,
    /// Zipf exponent of key popularity.
    pub zipf_s: f64,
    /// Fraction of requests that are GETs (the rest are PUTs).
    pub read_frac: f64,
    /// Aggregate offered arrival rate, requests per second, split evenly
    /// across workers.
    pub offered_rate: f64,
    /// Requests per worker (the run length; fixed counts keep runs
    /// deterministic and comparable across engines).
    pub requests_per_worker: u64,
    /// Base RNG seed; worker `w` uses stream `seed ⊕ mix(w)`.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            engine: EngineKind::Hybrid,
            workers: 4,
            keys: 256,
            monitors: 16,
            users: 2_000_000,
            zipf_s: 1.1,
            read_frac: 0.9,
            offered_rate: 50_000.0,
            requests_per_worker: 1_000,
            seed: 0x5e4e,
        }
    }
}

impl ServeConfig {
    /// Reject geometries the run loop cannot execute.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("serve: workers must be >= 1".into());
        }
        if self.keys == 0 || self.monitors == 0 {
            return Err("serve: keys and monitors must be >= 1".into());
        }
        if self.users < self.workers as u64 {
            return Err("serve: user population smaller than worker count".into());
        }
        if !(0.0..=1.0).contains(&self.read_frac) {
            return Err(format!("serve: read_frac {} outside [0, 1]", self.read_frac));
        }
        if self.offered_rate <= 0.0 {
            return Err("serve: offered_rate must be positive".into());
        }
        if self.requests_per_worker == 0 {
            return Err("serve: requests_per_worker must be >= 1".into());
        }
        Ok(())
    }

    /// The runtime geometry this config needs.
    pub fn runtime_config(&self) -> RuntimeConfig {
        RuntimeConfig::builder()
            .max_threads(self.workers)
            .heap_objects(self.keys)
            .monitors(self.monitors)
            .build()
    }
}

/// Everything one serve run produces.
#[derive(Clone, Debug)]
pub struct ServeResult {
    /// Engine configuration name (kind-aware via [`AnyEngine`]).
    pub engine: &'static str,
    /// Worker-session count.
    pub workers: usize,
    /// Wall-clock duration of the serving phase.
    pub wall: Duration,
    /// Merged offered-load accounting across workers (quiesced: in-flight
    /// is zero once every worker drained).
    pub accounting: LoadAccounting,
    /// Completions per wall-clock second.
    pub throughput_rps: f64,
    /// The runtime's full stats snapshot, including the
    /// `latency.serve_service` / `latency.serve_sojourn` histograms.
    pub report: StatsReport,
    /// Completed PUTs per key, summed across workers.
    pub puts_per_key: Vec<u64>,
    /// Final raw payload of every key at quiescence.
    pub final_values: Vec<u64>,
    /// GETs that observed a value tagged for a different key (must be 0).
    pub tag_violations: u64,
}

impl ServeResult {
    /// Sojourn-time percentile in nanoseconds (log₂-bucket quantized).
    pub fn sojourn_pct(&self, p: f64) -> u64 {
        self.report.latency(LatencyKind::ServeSojourn).percentile(p)
    }

    /// Service-time percentile in nanoseconds.
    pub fn service_pct(&self, p: f64) -> u64 {
        self.report.latency(LatencyKind::ServeService).percentile(p)
    }

    /// The store-linearizability quiescent check: with all workers drained,
    /// every completed PUT must be visible — key `k`'s final sequence number
    /// equals the number of PUTs completed against it, its final value
    /// carries its own tag, and no GET ever observed a foreign tag.
    pub fn check_quiescent(&self) -> Result<(), String> {
        if !self.accounting.balanced() || self.accounting.in_flight != 0 {
            return Err(format!(
                "serve accounting unbalanced at quiescence: {:?}",
                self.accounting
            ));
        }
        if self.tag_violations > 0 {
            return Err(format!(
                "{} GET(s) observed a foreign-tagged value",
                self.tag_violations
            ));
        }
        for (k, (&puts, &raw)) in self.puts_per_key.iter().zip(&self.final_values).enumerate() {
            let (tag, seq) = KvStore::decode(raw);
            if puts == 0 {
                if raw != 0 {
                    return Err(format!("key {k}: never PUT but holds {raw:#x}"));
                }
                continue;
            }
            if tag != KvStore::tag(k) >> 32 {
                return Err(format!("key {k}: final value {raw:#x} carries a foreign tag"));
            }
            if u64::from(seq) != puts {
                return Err(format!(
                    "key {k}: lost update — {puts} PUT(s) completed but final seq is {seq}"
                ));
            }
        }
        Ok(())
    }
}

/// Per-worker tallies handed back from the serving threads.
struct WorkerOutcome {
    accounting: LoadAccounting,
    puts_per_key: Vec<u64>,
    tag_violations: u64,
}

/// Run the store on a caller-provided runtime (sized by
/// [`ServeConfig::runtime_config`] or larger — the chaos harness uses this
/// to register schedule hooks first). The engine is built from
/// `cfg.engine` through the erased constructor; nothing downstream of this
/// call dispatches on the kind.
pub fn run_serve_on(rt: Arc<Runtime>, cfg: &ServeConfig) -> ServeResult {
    cfg.validate().unwrap_or_else(|e| panic!("{e}"));
    assert!(rt.config().max_threads >= cfg.workers, "too few thread slots");
    assert!(rt.heap().len() >= cfg.keys, "heap smaller than key space");

    let engine: AnyEngine = cfg.engine.build(rt);
    let store = KvStore::new(cfg.keys, cfg.monitors);
    store.init(&engine);

    let zipf = Zipf::new(cfg.keys, cfg.zipf_s);
    let per_worker_rate = cfg.offered_rate / cfg.workers as f64;
    let users_per_worker = (cfg.users / cfg.workers as u64).max(1);
    let barrier = Barrier::new(cfg.workers);

    let start = Instant::now();
    let outcomes: Vec<WorkerOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.workers)
            .map(|w| {
                let engine = &engine;
                let store = &store;
                let zipf = &zipf;
                let barrier = &barrier;
                s.spawn(move || {
                    serve_worker(
                        engine,
                        store,
                        zipf,
                        barrier,
                        w,
                        cfg,
                        per_worker_rate,
                        users_per_worker,
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = start.elapsed();

    let mut accounting = LoadAccounting::default();
    let mut puts_per_key = vec![0u64; cfg.keys];
    let mut tag_violations = 0u64;
    for o in &outcomes {
        accounting.merge(&o.accounting);
        tag_violations += o.tag_violations;
        for (sum, n) in puts_per_key.iter_mut().zip(&o.puts_per_key) {
            *sum += n;
        }
    }

    let rt = engine.rt();
    ServeResult {
        engine: engine.name(),
        workers: cfg.workers,
        wall,
        accounting,
        throughput_rps: accounting.completions as f64 / wall.as_secs_f64().max(1e-9),
        report: rt.stats().report(),
        puts_per_key,
        final_values: rt.heap().snapshot_data()[..cfg.keys].to_vec(),
        tag_violations,
    }
}

/// Construct a fresh runtime and run the store on it.
pub fn run_serve(cfg: &ServeConfig) -> ServeResult {
    cfg.validate().unwrap_or_else(|e| panic!("{e}"));
    run_serve_on(Arc::new(Runtime::new(cfg.runtime_config())), cfg)
}

/// One worker session's open loop. The arrival schedule is *virtual time*
/// relative to the post-barrier start instant: a worker that falls behind
/// does not slow arrivals down — the lag lands in sojourn time, which is
/// the point of open-loop measurement.
#[allow(clippy::too_many_arguments)]
fn serve_worker(
    engine: &AnyEngine,
    store: &KvStore,
    zipf: &Zipf,
    barrier: &Barrier,
    worker: usize,
    cfg: &ServeConfig,
    per_worker_rate: f64,
    users_per_worker: u64,
) -> WorkerOutcome {
    let sess = Session::attach(engine);
    let stats = engine.rt().stats();
    // Worker streams: one for the arrival clock, one for request content,
    // decorrelated from each other and from every other worker.
    let mut clock_rng = SplitMix64::new(cfg.seed ^ (worker as u64).wrapping_mul(0x9E37_79B9));
    let mut req_rng = SplitMix64::new(cfg.seed.rotate_left(17) ^ (worker as u64));

    barrier.wait();
    let start = Instant::now();
    let mut arrival_ns: u64 = 0;
    let mut acct = LoadAccounting::default();
    let mut puts_per_key = vec![0u64; store.keys()];
    let mut tag_violations = 0u64;

    for _ in 0..cfg.requests_per_worker {
        arrival_ns += exp_interarrival_ns(&mut clock_rng, per_worker_rate);
        // Idle until the scheduled arrival. Safe-point while waiting: an
        // idle server thread still answers coordination requests.
        while (start.elapsed().as_nanos() as u64) < arrival_ns {
            sess.safepoint();
            std::hint::spin_loop();
        }
        acct.arrive();
        let service_start = Instant::now();

        // The requesting user: drawn from this worker's residue class of
        // the population, so `user % workers == worker` always holds. The
        // user's key preference is a pure hash of the user id pushed
        // through the Zipf CDF — a user hammers their own session key
        // distribution, and popular ranks are shared across many users.
        let user = worker as u64 + cfg.workers as u64 * (req_rng.next_u64() % users_per_worker);
        let u01 = SplitMix64::new(cfg.seed ^ user).next_f64();
        let key = zipf.sample_u01(u01);

        if req_rng.next_f64() < cfg.read_frac {
            if let GetOutcome::ForeignTag(_) = store.get(&sess, key) {
                tag_violations += 1;
            }
        } else {
            store.put(&sess, key);
            puts_per_key[key] += 1;
        }
        sess.safepoint();

        let done = start.elapsed().as_nanos() as u64;
        stats.record_latency(
            LatencyKind::ServeService,
            service_start.elapsed().as_nanos() as u64,
        );
        stats.record_latency(LatencyKind::ServeSojourn, done.saturating_sub(arrival_ns));
        acct.complete();
    }
    drop(sess); // detach: the final flush makes the worker's writes visible
    WorkerOutcome {
        accounting: acct,
        puts_per_key,
        tag_violations,
    }
}

/// The chaos-harness serve configuration: small key space, hot Zipf head,
/// write-heavy mix, and an offered rate high enough that the schedule is
/// always behind (workers never idle-wait), so runs are fast and the
/// interleaving is decided entirely by the chaos scheduler's perturbations.
pub fn chaos_serve(seed: u64) -> ServeConfig {
    ServeConfig {
        engine: EngineKind::Hybrid, // overridden per matrix cell
        workers: 4,
        keys: 32,
        monitors: 4,
        users: 1 << 20,
        zipf_s: 1.1,
        read_frac: 0.6,
        offered_rate: 1e9,
        requests_per_worker: 300,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(engine: EngineKind) -> ServeConfig {
        ServeConfig {
            engine,
            workers: 2,
            keys: 16,
            monitors: 4,
            users: 1 << 16,
            zipf_s: 1.1,
            read_frac: 0.5,
            offered_rate: 1e9, // saturated: no idle waits, fast test
            requests_per_worker: 200,
            seed: 0xABCD,
        }
    }

    #[test]
    fn every_engine_kind_serves_and_passes_the_quiescent_check() {
        for kind in EngineKind::ALL {
            let r = run_serve(&quick(kind));
            assert_eq!(r.accounting.completions, 400, "{kind:?}");
            assert!(r.throughput_rps > 0.0, "{kind:?}");
            r.check_quiescent()
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        }
    }

    #[test]
    fn adaptive_reports_its_kind_aware_name() {
        let r = run_serve(&quick(EngineKind::Adaptive));
        assert_eq!(r.engine, "adaptive");
    }

    #[test]
    fn put_totals_are_engine_independent() {
        // The request streams are pure functions of (seed, worker), so the
        // number of PUTs landing on each key must not depend on which
        // engine tracked them — the precondition for the chaos oracle's
        // cross-engine comparison.
        let base = run_serve(&quick(EngineKind::Baseline));
        for kind in [EngineKind::Pessimistic, EngineKind::Optimistic, EngineKind::Hybrid] {
            let r = run_serve(&quick(kind));
            assert_eq!(r.puts_per_key, base.puts_per_key, "{kind:?}");
            assert_eq!(r.final_values, base.final_values, "{kind:?}");
        }
    }

    #[test]
    fn latency_histograms_are_populated() {
        let r = run_serve(&quick(EngineKind::Hybrid));
        assert_eq!(
            r.report.latency(LatencyKind::ServeService).count(),
            r.accounting.completions
        );
        assert_eq!(
            r.report.latency(LatencyKind::ServeSojourn).count(),
            r.accounting.completions
        );
        // Sojourn dominates service: it contains it by construction.
        assert!(r.sojourn_pct(50.0) >= r.service_pct(50.0) / 2);
    }

    #[test]
    fn open_loop_paces_arrivals_when_capacity_exceeds_rate() {
        // At a modest offered rate the run must take at least the expected
        // schedule length — the generator really is open-loop, not
        // issue-as-fast-as-possible.
        let cfg = ServeConfig {
            offered_rate: 20_000.0,
            requests_per_worker: 50,
            workers: 2,
            ..quick(EngineKind::Baseline)
        };
        // 100 requests at 20k rps aggregate ≈ 5 ms of schedule.
        let r = run_serve(&cfg);
        assert!(
            r.wall >= Duration::from_millis(2),
            "run finished in {:?}: arrivals were not paced",
            r.wall
        );
        r.check_quiescent().unwrap();
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = ServeConfig::default();
        cfg.workers = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = ServeConfig::default();
        cfg.read_frac = 1.5;
        assert!(cfg.validate().is_err());
        let mut cfg = ServeConfig::default();
        cfg.offered_rate = 0.0;
        assert!(cfg.validate().is_err());
    }
}
