//! The KV/session store: every shared access goes through the engine-erased
//! [`Session`] façade.
//!
//! The store is deliberately tiny — a fixed key space where key `k` lives in
//! tracked object `k` and is guarded by monitor `k % monitors` — because the
//! point is not the data structure but the *access discipline*: PUTs are
//! `synchronized` read-modify-writes (well-synchronized sharing, the
//! deferred-unlock friendly case), GETs are unsynchronized tracked reads
//! (the RdSh/seqlock case, racy by design). Crucially, the store is written
//! once against `Session<'_, AnyEngine>`: there is **no per-engine code** in
//! here — which engine tracks the accesses is decided at runtime by
//! [`EngineKind::build`](drink_core::EngineKind::build).
//!
//! ## Value encoding (the linearizability tag)
//!
//! A key's payload is `((k + 1) << 32) | seq`: the upper half names the key
//! (1-based, so 0 still means "never written"), the lower half counts the
//! PUTs applied to it. The encoding gives the quiescent oracle two teeth:
//!
//! * **lost-update check** — under the per-key monitor, PUT seq numbers are
//!   a contended counter; at quiescence `seq(k)` must equal the number of
//!   completed PUTs to `k` across all workers;
//! * **cross-key smear check** — any GET (racy!) must still observe a value
//!   whose tag is its own key or zero; a torn/foreign value means tracked
//!   reads leaked another object's payload.

use drink_core::engine::AnyEngine;
use drink_core::{Session, Tracker};
use drink_runtime::{MonitorId, ObjId};

/// Key-space geometry of the store (no per-session state; workers share one
/// by reference).
#[derive(Clone, Copy, Debug)]
pub struct KvStore {
    keys: usize,
    monitors: usize,
}

/// What a completed GET observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GetOutcome {
    /// Key never written yet.
    Empty,
    /// A value carrying the key's own tag; payload is the PUT sequence
    /// number observed.
    Value(u32),
    /// A value whose tag belongs to a different key (or a torn mix) — a
    /// store-consistency violation the oracle fails on.
    ForeignTag(u64),
}

impl KvStore {
    /// A store over `keys` keys guarded by `monitors` monitors. The engine's
    /// runtime must be sized with at least that many heap objects and
    /// monitors.
    pub fn new(keys: usize, monitors: usize) -> Self {
        assert!(keys >= 1 && monitors >= 1);
        KvStore { keys, monitors }
    }

    /// Number of keys.
    pub fn keys(&self) -> usize {
        self.keys
    }

    /// The tracked object holding key `k`.
    #[inline]
    fn obj(&self, k: usize) -> ObjId {
        debug_assert!(k < self.keys);
        ObjId(k as u32)
    }

    /// The monitor guarding key `k`'s PUT path.
    #[inline]
    fn guard(&self, k: usize) -> MonitorId {
        MonitorId((k % self.monitors) as u32)
    }

    /// The tag half of key `k`'s value encoding.
    #[inline]
    pub fn tag(k: usize) -> u64 {
        ((k as u64) + 1) << 32
    }

    /// Split a raw payload into (tag, seq).
    #[inline]
    pub fn decode(v: u64) -> (u64, u32) {
        (v >> 32, v as u32)
    }

    /// Install the initial (empty) value of every key from the allocating
    /// session's thread. Keys start read-shared: a session store's keys are
    /// read by every worker from the first request on, which is exactly the
    /// long-lived read-mostly shape `alloc_init_read_shared` models.
    pub fn init(&self, engine: &AnyEngine) {
        for k in 0..self.keys {
            engine.alloc_init_read_shared(self.obj(k));
        }
    }

    /// PUT: a `synchronized` read-modify-write bumping the key's sequence
    /// number. Returns the sequence number this PUT installed (1-based).
    pub fn put(&self, sess: &Session<'_, AnyEngine>, k: usize) -> u32 {
        let (obj, guard) = (self.obj(k), self.guard(k));
        sess.synchronized(guard, |s| {
            let (_, seq) = Self::decode(s.read(obj));
            let next = seq.wrapping_add(1);
            s.write(obj, Self::tag(k) | u64::from(next));
            next
        })
    }

    /// GET: an unsynchronized tracked read, classified against the key's
    /// tag. Racy with concurrent PUTs by design — the tracking engine, not
    /// the store, is responsible for making the access well-defined.
    pub fn get(&self, sess: &Session<'_, AnyEngine>, k: usize) -> GetOutcome {
        let v = sess.read(self.obj(k));
        if v == 0 {
            return GetOutcome::Empty;
        }
        let (tag, seq) = Self::decode(v);
        if tag == Self::tag(k) >> 32 {
            GetOutcome::Value(seq)
        } else {
            GetOutcome::ForeignTag(v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drink_core::EngineKind;
    use drink_runtime::RuntimeConfig;

    #[test]
    fn put_get_roundtrip_on_every_engine_kind() {
        for kind in EngineKind::ALL {
            let engine = kind.build_config(
                RuntimeConfig::builder()
                    .max_threads(2)
                    .heap_objects(8)
                    .monitors(2)
                    .build(),
            );
            let store = KvStore::new(8, 2);
            store.init(&engine);
            let sess = Session::attach(&engine);
            assert_eq!(store.get(&sess, 3), GetOutcome::Empty, "{kind:?}");
            assert_eq!(store.put(&sess, 3), 1);
            assert_eq!(store.put(&sess, 3), 2);
            assert_eq!(store.get(&sess, 3), GetOutcome::Value(2), "{kind:?}");
            assert_eq!(store.get(&sess, 4), GetOutcome::Empty, "{kind:?}");
        }
    }

    #[test]
    fn tags_separate_keys() {
        assert_ne!(KvStore::tag(0), 0, "key 0 still gets a nonzero tag");
        assert_ne!(KvStore::tag(1), KvStore::tag(2));
        let (tag, seq) = KvStore::decode(KvStore::tag(5) | 7);
        assert_eq!(tag, 6);
        assert_eq!(seq, 7);
    }
}
