//! `drink-serve`: CLI for the open-loop KV-store macro-benchmark.
//!
//! Three modes:
//!
//! * **default (CLI)** — one run with the flags below, printing throughput
//!   and the service/sojourn percentile table;
//! * **`--bench [out.json]`** — the gated matrix: four engine kinds ×
//!   {8, 16} worker sessions, each contributing a throughput row
//!   (`higher_is_better`, requests/sec) and a p99-sojourn row to the
//!   schema-v5 report `scripts/bench_gate.sh` compares (best-of-trials:
//!   max throughput, min p99 — the run-to-run-stable extremes on a noisy
//!   shared host);
//! * **`--smoke [out.json]`** — a short fixed-rate run asserting nonzero
//!   throughput, a clean quiescent store check, and a report
//!   export/parse round trip. Exit 0 clean, 1 check failure, 2 usage.
//!
//! ```bash
//! drink-serve [--engine KIND] [--threads N] [--rate RPS] [--requests N]
//!             [--zipf S] [--read-frac F] [--keys N] [--users N] [--seed N]
//! drink-serve --bench [out.json] [--trials N]
//! drink-serve --smoke [out.json]
//! ```

use drink_bench::report::Report;
use drink_core::EngineKind;
use drink_serve::{run_serve, ServeConfig, ServeResult};

fn arg_after(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_or_usage<T: std::str::FromStr>(v: String, what: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("drink-serve: bad {what}: {v}");
        std::process::exit(2);
    })
}

fn config_from_args(args: &[String]) -> ServeConfig {
    let mut cfg = ServeConfig::default();
    if let Some(name) = arg_after(args, "--engine") {
        cfg.engine = EngineKind::parse(&name).unwrap_or_else(|| {
            eprintln!(
                "drink-serve: unknown engine {name:?} (expected {})",
                EngineKind::CLI_NAMES
            );
            std::process::exit(2);
        });
    }
    if let Some(v) = arg_after(args, "--threads") {
        cfg.workers = parse_or_usage(v, "--threads");
    }
    if let Some(v) = arg_after(args, "--rate") {
        cfg.offered_rate = parse_or_usage(v, "--rate");
    }
    if let Some(v) = arg_after(args, "--requests") {
        cfg.requests_per_worker = parse_or_usage(v, "--requests");
    }
    if let Some(v) = arg_after(args, "--zipf") {
        cfg.zipf_s = parse_or_usage(v, "--zipf");
    }
    if let Some(v) = arg_after(args, "--read-frac") {
        cfg.read_frac = parse_or_usage(v, "--read-frac");
    }
    if let Some(v) = arg_after(args, "--keys") {
        cfg.keys = parse_or_usage(v, "--keys");
    }
    if let Some(v) = arg_after(args, "--users") {
        cfg.users = parse_or_usage(v, "--users");
    }
    if let Some(v) = arg_after(args, "--seed") {
        cfg.seed = parse_or_usage(v, "--seed");
    }
    if let Err(e) = cfg.validate() {
        eprintln!("drink-serve: {e}");
        std::process::exit(2);
    }
    cfg
}

fn print_result(r: &ServeResult) {
    println!(
        "{} × {} workers: {} completions in {:.1} ms — {:.0} req/s",
        r.engine,
        r.workers,
        r.accounting.completions,
        r.wall.as_secs_f64() * 1e3,
        r.throughput_rps
    );
    println!(
        "  service  p50={:>9} p90={:>9} p99={:>9} ns",
        r.service_pct(50.0),
        r.service_pct(90.0),
        r.service_pct(99.0)
    );
    println!(
        "  sojourn  p50={:>9} p90={:>9} p99={:>9} ns",
        r.sojourn_pct(50.0),
        r.sojourn_pct(90.0),
        r.sojourn_pct(99.0)
    );
}

/// The gated matrix. Worker widths cover one step past the default-shard
/// boundary; the engine set is the four runtime-selectable production kinds.
const BENCH_WIDTHS: [usize; 2] = [8, 16];
const BENCH_ENGINES: [EngineKind; 4] = [
    EngineKind::Pessimistic,
    EngineKind::Optimistic,
    EngineKind::Hybrid,
    EngineKind::Adaptive,
];

fn bench_config(kind: EngineKind, workers: usize) -> ServeConfig {
    ServeConfig {
        engine: kind,
        workers,
        keys: 256,
        monitors: 16,
        users: 2_000_000,
        zipf_s: 1.1,
        read_frac: 0.9,
        // Offered far above single-host capacity: the rows measure the
        // store's saturated service rate and its queueing tail, which is
        // what regresses when tracked-access costs grow.
        offered_rate: 5e8,
        requests_per_worker: 400,
        seed: 0x5e4e_b4c4,
    }
}

fn bench(out: &str, trials: usize) {
    let mut report = Report::new("drink-serve/serve");
    for n in BENCH_WIDTHS {
        for kind in BENCH_ENGINES {
            let cfg = bench_config(kind, n);
            let mut best_tput = 0.0f64;
            let mut best_p99 = u64::MAX;
            let mut completions = 0u64;
            for _ in 0..trials {
                let r = run_serve(&cfg);
                r.check_quiescent().unwrap_or_else(|e| {
                    eprintln!("drink-serve: {kind:?} t={n}: {e}");
                    std::process::exit(1);
                });
                completions = r.accounting.completions;
                best_tput = best_tput.max(r.throughput_rps);
                best_p99 = best_p99.min(r.sojourn_pct(99.0));
            }
            let tag = kind.short_name();
            println!(
                "serve {tag:<6} t={n:<2} {best_tput:>10.0} req/s  p99 sojourn {best_p99:>10} ns"
            );
            report.push_throughput(format!("serve_tput_{tag}_t{n}"), completions, best_tput, n as u64);
            report.push_threaded(
                format!("serve_sojourn_p99_{tag}_t{n}"),
                completions,
                best_p99 as f64,
                n as u64,
            );
        }
    }
    report.write(out).unwrap_or_else(|e| {
        eprintln!("drink-serve: cannot write: {e}");
        std::process::exit(2);
    });
    println!("wrote {out}");
}

fn smoke(out: &str) {
    // Short but genuinely rate-limited: the smoke leg also proves the
    // open-loop pacing path (idle-wait + safepoint) works end to end.
    let cfg = ServeConfig {
        engine: EngineKind::Hybrid,
        workers: 4,
        offered_rate: 40_000.0,
        requests_per_worker: 100,
        ..ServeConfig::default()
    };
    let r = run_serve(&cfg);
    print_result(&r);
    if r.accounting.completions == 0 || r.throughput_rps <= 0.0 {
        eprintln!("drink-serve: smoke produced no throughput");
        std::process::exit(1);
    }
    if let Err(e) = r.check_quiescent() {
        eprintln!("drink-serve: smoke store check failed: {e}");
        std::process::exit(1);
    }
    // Histogram → report → disk → parse round trip.
    let mut report = Report::new("drink-serve/smoke");
    report.push_throughput("serve_smoke_tput".into(), r.accounting.completions, r.throughput_rps, 4);
    report.push_threaded("serve_smoke_sojourn_p99".into(), r.accounting.completions, r.sojourn_pct(99.0) as f64, 4);
    report.write(out).unwrap_or_else(|e| {
        eprintln!("drink-serve: cannot write: {e}");
        std::process::exit(2);
    });
    let back = Report::load(out).unwrap_or_else(|e| {
        eprintln!("drink-serve: smoke report failed to re-load: {e}");
        std::process::exit(1);
    });
    if back != report {
        eprintln!("drink-serve: smoke report round trip diverged");
        std::process::exit(1);
    }
    println!("serve smoke OK ({} completions, report round trip clean)", r.accounting.completions);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_or = |default: &str| {
        args.iter()
            .skip(1)
            .find(|a| !a.starts_with("--") && a.ends_with(".json"))
            .cloned()
            .unwrap_or_else(|| default.to_string())
    };
    if args.first().map(String::as_str) == Some("--bench") {
        let trials = arg_after(&args, "--trials")
            .map(|v| parse_or_usage(v, "--trials"))
            .unwrap_or(3);
        bench(&out_or("BENCH_serve.json"), trials);
        return;
    }
    if args.first().map(String::as_str) == Some("--smoke") {
        smoke(&out_or("SERVE_smoke.json"));
        return;
    }
    let cfg = config_from_args(&args);
    let r = run_serve(&cfg);
    print_result(&r);
    if let Err(e) = r.check_quiescent() {
        eprintln!("drink-serve: store check failed: {e}");
        std::process::exit(1);
    }
}
