//! Offline stand-in for `proptest`: deterministic random testing without
//! shrinking.
//!
//! Supports the subset this workspace uses: the `proptest!` macro (with an
//! optional `#![proptest_config(..)]` header), `Strategy` + `prop_map`,
//! tuple strategies, integer/float range strategies, `any::<T>()`, and the
//! `prop_assert*` macros. Failures panic with the case's seed instead of
//! shrinking; each test's stream is a deterministic function of its name.

use std::ops::{Range, RangeInclusive};

/// Configuration accepted by `#![proptest_config(..)]`. Only `cases` is
/// honored; `max_shrink_iters` exists for source compatibility (this shim
/// never shrinks).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// splitmix64 stream used to drive strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Deterministic per-test seed derived from the test's name (FNV-1a).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Explicit test-case failure, usable with `?` inside `proptest!` bodies.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    pub fn fail(msg: impl std::fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }

    pub fn reject(msg: impl std::fmt::Display) -> Self {
        Self::fail(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strategy: self, f }
    }
}

pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.generate(rng))
    }
}

/// A constant strategy (`Just(x)`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// --- range strategies ------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128).wrapping_add((rng.next_u64() as u128) % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                (lo as u128).wrapping_add((rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// --- any::<T>() ------------------------------------------------------------

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// --- collection strategies --------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end.saturating_sub(self.len.start).max(1);
            let n = self.len.start + (rng.next_u64() as usize) % span;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "empty length range");
        VecStrategy { element, len }
    }
}

// --- tuple strategies ------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident . $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);

// --- macros ----------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( cfg = ($cfg:expr); ) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let __strats = ( $($strat,)+ );
            for __case in 0..__cfg.cases {
                let ( $($arg,)+ ) = $crate::Strategy::generate(&__strats, &mut __rng);
                let __result: $crate::TestCaseResult = (move || {
                    $body
                    Ok(())
                })();
                if let Err(__e) = __result {
                    panic!("proptest case {} of {} failed: {}", __case + 1, stringify!($name), __e);
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, max_shrink_iters: 0, ..ProptestConfig::default() })]

        #[test]
        fn mapped_strategy_applies(x in arb_even(), b in any::<bool>()) {
            prop_assert_eq!(x % 2, 0);
            prop_assert!(b || !b, "tautology with {}", x);
        }

        #[test]
        fn inclusive_range_hits_bounds(x in 0u64..=3) {
            prop_assert!(x <= 3);
        }
    }

    #[test]
    fn streams_are_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
