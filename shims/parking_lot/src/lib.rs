//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! Implements the subset of the API this workspace uses: `Mutex` (non-poisoning
//! `lock`) and `Condvar` (`wait`, `wait_for`, `notify_one`, `notify_all`).
//! Poisoning is deliberately ignored to match parking_lot semantics: a panic
//! while holding the lock does not make later `lock()` calls fail.

use std::ops::{Deref, DerefMut};

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can take the std guard by value and put it back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(std_guard);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard taken");
        let (std_guard, res) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            *g = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        h.join().unwrap();
        assert!(*g);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
