//! Offline stand-in for `criterion`: same API shape, simple fixed-budget
//! timing loop, plain-text ns/iter report on stdout. No statistics, plots,
//! or CLI parsing.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub struct Criterion {
    sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.sample_time, name, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.sample_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion.sample_time, &label, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion.sample_time, &label, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up briefly, then run timed batches until the budget is spent.
        let warmup_end = Instant::now() + self.budget / 10;
        let mut batch: u64 = 1;
        while Instant::now() < warmup_end {
            for _ in 0..batch {
                black_box(f());
            }
            batch = (batch * 2).min(1 << 20);
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            for _ in 0..batch {
                black_box(f());
            }
            iters += batch;
            let elapsed = start.elapsed();
            if elapsed >= self.budget {
                self.iters_done = iters;
                self.elapsed = elapsed;
                return;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(budget: Duration, label: &str, mut f: F) {
    let mut b = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        budget,
    };
    f(&mut b);
    if b.iters_done > 0 {
        let ns = b.elapsed.as_nanos() as f64 / b.iters_done as f64;
        println!("{label:<50} {ns:>12.1} ns/iter ({} iters)", b.iters_done);
    } else {
        println!("{label:<50} (no measurement)");
    }
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
