//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace declares the dependency but currently uses no crossbeam
//! APIs; this empty crate satisfies resolution without network access.
