//! Offline stand-in for `rand` 0.8: `SmallRng` + the `Rng`/`SeedableRng`
//! trait surface this workspace uses (`gen`, `gen_bool`, `gen_range` over
//! half-open integer ranges and the unit f64 interval).
//!
//! The generator is xorshift64*; the point is deterministic, well-mixed
//! streams for workload generation, not statistical perfection.

use std::ops::Range;

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        T: SampleStandard,
    {
        T::sample_standard(self.next_u64())
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types producible by `rng.gen()` (the `Standard` distribution).
pub trait SampleStandard {
    fn sample_standard(raw: u64) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard(raw: u64) -> Self {
        unit_f64(raw)
    }
}

impl SampleStandard for bool {
    fn sample_standard(raw: u64) -> Self {
        raw & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard(raw: u64) -> Self {
                raw as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with `rng.gen_range(..)`.
pub trait SampleRange<T> {
    fn sample(self, raw: u64) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, raw: u64) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                (self.start as u128).wrapping_add((raw as u128) % span) as $t
            }
        }
    )*};
}

range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, raw: u64) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(raw) * (self.end - self.start)
    }
}

fn unit_f64(raw: u64) -> f64 {
    // 53 random bits into [0, 1).
    (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xorshift64* with splitmix64 seeding (deterministic across platforms).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 to spread low-entropy seeds over the state space;
            // xorshift needs a non-zero state.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            Self {
                state: if z == 0 { 0x853c_49e6_748f_ea9b } else { z },
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }

    /// Alias kept so `features = ["std_rng"]` users resolve.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&g));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }
}
