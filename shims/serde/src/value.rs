//! The serialized tree shared by the `serde` and `serde_json` shims.

/// A self-describing serialized value (the JSON data model, with integers
/// kept exact).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (field order is preserved in output).
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}
