//! Offline stand-in for `serde`: a tree-based data model instead of the real
//! visitor architecture.
//!
//! `Serialize` renders a type into a [`value::Value`] tree and `Deserialize`
//! rebuilds the type from one. The companion `serde_json` shim parses and
//! prints that tree as JSON, and the `serde_derive` shim generates these
//! impls for the plain struct/enum shapes used in this workspace. The
//! conventions mirror real serde: newtype structs are transparent, enums are
//! externally tagged, unit variants are strings.

pub mod value;

pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Serialization/deserialization error (a message, like `serde_json::Error`).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Look up a required field in a serialized map.
pub fn map_get<'v>(entries: &'v [(String, Value)], key: &str) -> Result<&'v Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{key}`")))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => {
                        i64::try_from(n).map_err(|_| Error::custom("integer out of range"))?
                    }
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            _ => Err(Error::custom("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            Value::Seq(items) => Err(Error::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            ))),
            _ => Err(Error::custom("expected sequence")),
        }
    }
}

macro_rules! ser_de_tuple {
    ($(($($t:ident . $idx:tt),+ ; $len:expr)),* $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(Error::custom(concat!("expected tuple of length ", $len))),
                }
            }
        }
    )*};
}

ser_de_tuple!(
    (A.0; 1),
    (A.0, B.1; 2),
    (A.0, B.1, C.2; 3),
    (A.0, B.1, C.2, D.3; 4),
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
