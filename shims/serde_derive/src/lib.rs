//! Offline stand-in for `serde_derive`: a hand-rolled proc macro (no
//! syn/quote) covering the shapes this workspace derives on — named structs,
//! tuple/newtype structs, and enums with unit or single-field tuple variants.
//! No `#[serde(...)]` attributes are supported; generics are rejected.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_serialize(&item).parse().expect("generated Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl")
}

// ---------------------------------------------------------------------------
// Minimal item model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    /// struct S { a: T, b: U }
    NamedStruct(Vec<String>),
    /// struct S(T, U); — 1 field is serialized transparently (newtype)
    TupleStruct(usize),
    /// enum E { Unit, Tuple(T) } — (variant name, field count 0|1)
    Enum(Vec<(String, usize)>),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kw = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("serde_derive shim: expected struct/enum, got {t}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("serde_derive shim: expected type name, got {t}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generics are not supported ({name})");
        }
    }

    let shape = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_top_level_fields(g.stream()))
            }
            t => panic!("serde_derive shim: unsupported struct body for {name}: {t:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            t => panic!("serde_derive shim: unsupported enum body for {name}: {t:?}"),
        },
        other => panic!("serde_derive shim: unsupported item kind `{other}`"),
    };
    Item { name, shape }
}

/// Skip doc comments / attributes (`#[...]`) and visibility (`pub`, `pub(..)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("serde_derive shim: expected field name, got {t}"),
        };
        fields.push(name);
        i += 1;
        // ':' then the type, up to a top-level ',' (angle-bracket aware:
        // commas inside `Foo<A, B>` are not field separators).
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn count_top_level_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_trailing_comma = false;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if idx == tokens.len() - 1 {
                    saw_trailing_comma = true;
                } else {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    let _ = saw_trailing_comma;
    count
}

fn parse_variants(body: TokenStream) -> Vec<(String, usize)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("serde_derive shim: expected variant name, got {t}"),
        };
        i += 1;
        let mut fields = 0usize;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    fields = count_top_level_fields(g.stream());
                    i += 1;
                }
                Delimiter::Brace => {
                    panic!("serde_derive shim: struct variants unsupported ({name})")
                }
                _ => {}
            }
        }
        // Skip optional `= discriminant` and the trailing comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push((name, fields));
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Map(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, n)| match n {
                    0 => format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),"
                    ),
                    1 => format!(
                        "{name}::{v}(ref __f0) => ::serde::Value::Map(::std::vec![(\
                         \"{v}\".to_string(), ::serde::Serialize::to_value(__f0))]),"
                    ),
                    _ => panic!("serde_derive shim: multi-field variants unsupported"),
                })
                .collect();
            format!("match *self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::map_get(__m, \"{f}\")?)?,"
                    )
                })
                .collect();
            format!(
                "let __m = __v.as_map().ok_or_else(|| \
                 ::serde::Error::custom(\"expected map for {name}\"))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(" ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                .collect();
            format!(
                "let __s = __v.as_seq().ok_or_else(|| \
                 ::serde::Error::custom(\"expected seq for {name}\"))?;\n\
                 if __s.len() != {n} {{ return Err(::serde::Error::custom(\
                 \"wrong tuple length for {name}\")); }}\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, n)| *n == 0)
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|(_, n)| *n == 1)
                .map(|(v, _)| {
                    format!(
                        "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?)),"
                    )
                })
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {units}\n\
                 __other => Err(::serde::Error::custom(::std::format!(\
                 \"unknown {name} variant `{{__other}}`\"))),\n\
                 }},\n\
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = (&__entries[0].0, &__entries[0].1);\n\
                 match __tag.as_str() {{\n\
                 {tagged}\n\
                 __other => Err(::serde::Error::custom(::std::format!(\
                 \"unknown {name} variant `{{__other}}`\"))),\n\
                 }}\n\
                 }},\n\
                 _ => Err(::serde::Error::custom(\"expected {name}\")),\n\
                 }}",
                units = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
