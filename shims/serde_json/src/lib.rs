//! Offline stand-in for `serde_json`: a JSON printer/parser over the serde
//! shim's [`Value`] tree.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        // {:?} is Rust's shortest round-trip float repr; always contains
        // '.' or 'e' so it parses back as F64.
        Value::F64(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x:?}"))
            } else {
                out.push_str("null")
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => write_compound(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(&items[i], out, indent, depth + 1)
        }),
        Value::Map(entries) => {
            write_compound(out, indent, depth, '{', '}', entries.len(), |out, i| {
                write_string(&entries[i].0, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(&entries[i].1, out, indent, depth + 1);
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(w * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(w * depth));
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::custom(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.seq(),
            b'{' => self.map(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::custom(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::custom("expected `,` or `]`")),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::custom("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::custom("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our printer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(Error::custom("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error::custom("truncated UTF-8"))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| Error::custom("bad UTF-8"))?,
                    );
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_compounds() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("hé\"llo\n".into())),
            ("count".into(), Value::U64(42)),
            ("neg".into(), Value::I64(-7)),
            ("frac".into(), Value::F64(0.25)),
            ("flag".into(), Value::Bool(true)),
            ("opt".into(), Value::Null),
            (
                "seq".into(),
                Value::Seq(vec![Value::U64(1), Value::F64(1.5e-3)]),
            ),
        ]);
        let compact = {
            let mut s = String::new();
            write_value(&v, &mut s, None, 0);
            s
        };
        assert_eq!(parse_value(&compact).unwrap(), v);
        let pretty = {
            let mut s = String::new();
            write_value(&v, &mut s, Some(2), 0);
            s
        };
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn float_shortest_repr_roundtrips() {
        for x in [0.1, 1.0, 1e300, -2.5, f64::MIN_POSITIVE] {
            let mut s = String::new();
            write_value(&Value::F64(x), &mut s, None, 0);
            assert_eq!(parse_value(&s).unwrap(), Value::F64(x), "{s}");
        }
    }
}
