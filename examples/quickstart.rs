//! Quickstart: attach threads to a hybrid tracking engine, perform tracked
//! accesses, and inspect the transition statistics the paper's evaluation is
//! built from.
//!
//! Run: `cargo run --release -p drink-examples --bin quickstart`

use std::sync::Arc;

use drink_core::prelude::*;
use drink_runtime::{Event, MonitorId, ObjId, Runtime, RuntimeConfig};

fn main() {
    // A runtime: 4 mutator slots, 64 tracked objects, 2 program monitors.
    let rt = Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(4)
        .heap_objects(64)
        .monitors(2)
        .build()));

    // The paper's hybrid tracking with its default adaptive policy
    // (Cutoff_confl = 4, K_confl = 200, Inertia = 100).
    let engine = HybridEngine::new(rt);

    let shared = ObjId(0); // one object everybody fights over
    let m = MonitorId(0); // a program lock

    std::thread::scope(|s| {
        for worker in 0..4 {
            let engine = &engine;
            s.spawn(move || {
                // Each OS thread attaches as a mutator; the session detaches
                // (and flushes pessimistic locks) on drop.
                let sess = Session::attach(engine);

                for i in 0..5_000u64 {
                    // Thread-private accesses take the synchronization-free
                    // optimistic fast path.
                    let mine = ObjId(10 + worker as u32);
                    sess.write(mine, i);

                    // Well-synchronized shared accesses: after a few
                    // conflicts the adaptive policy moves `shared` to
                    // pessimistic states, and ownership transfers by CAS
                    // instead of coordination roundtrips.
                    sess.synchronized(m, |s| {
                        let v = s.read(shared);
                        s.write(shared, v + 1);
                    });

                    // Safe point: the engine answers coordination requests
                    // here (the JIT would emit this at loop back edges).
                    sess.safepoint();
                    // Force fine-grained interleaving so the example shows
                    // cross-thread behavior even on single-core machines.
                    std::thread::yield_now();
                }
            });
        }
    });

    let report = engine.rt().stats().report();
    println!("accesses:                {}", report.accesses());
    println!("counter value:           {}", engine.rt().obj(shared).data_read());
    println!("optimistic same-state:   {}", report.opt_same_state());
    println!("optimistic conflicting:  {}", report.opt_conflicting());
    println!("pessimistic uncontended: {}", report.pess_uncontended());
    println!("  of which reentrant:    {:.0}%", report.pess_reentrant_pct());
    println!("pessimistic contended:   {}", report.pess_contended());
    println!("objects moved opt→pess:  {}", report.opt_to_pess());
    println!("coordination roundtrips: {}", report.get(Event::CoordinationRoundtrip));
    assert_eq!(engine.rt().obj(shared).data_read(), 20_000);
    println!("\nThe lock-protected counter is exact, and most shared-counter");
    println!("transfers happened as pessimistic CASes, not coordination — the");
    println!("\"drinking from both glasses\" effect.");
}
