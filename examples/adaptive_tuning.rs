//! The adaptive policy at work (§6): the same high-conflict workload under
//! optimistic tracking, hybrid tracking with the paper's policy, the
//! infinite-cutoff configuration, and the §7.5 contended-cutoff extension.
//!
//! Run: `cargo run --release -p drink-examples --bin adaptive_tuning`

use drink_core::engine::hybrid::{HybridConfig, HybridEngine};
use drink_core::policy::PolicyParams;
use drink_core::support::NullSupport;
use drink_runtime::Event;
use drink_workloads::{run_kind, run_workload, runtime_for, EngineKind, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec {
        name: "hot-pool".into(),
        threads: 6,
        steps_per_thread: 30_000,
        locked_frac: 0.02,
        lock_affinity: 0.3,
        hot_objects: 16,
        shared_read_frac: 0.05,
        ..WorkloadSpec::default()
    };

    println!("{:<34} {:>12} {:>12} {:>10}", "configuration", "conflicting", "pess unc.", "opt→pess");
    let show = |name: &str, r: &drink_runtime::StatsReport| {
        println!(
            "{:<34} {:>12} {:>12} {:>10}",
            name,
            r.opt_conflicting(),
            r.pess_uncontended(),
            r.opt_to_pess()
        );
    };

    let opt = run_kind(EngineKind::Optimistic, &spec);
    show("optimistic (no policy)", &opt.report);

    let inf = run_kind(EngineKind::HybridInfiniteCutoff, &spec);
    show("hybrid, Cutoff=∞ (costs only)", &inf.report);

    let hyb = run_kind(EngineKind::Hybrid, &spec);
    show("hybrid, paper defaults", &hyb.report);

    // Custom policy: eager cutoff, quick return to optimistic.
    let rt = runtime_for(&spec);
    let engine = HybridEngine::with_config(
        rt,
        NullSupport,
        HybridConfig {
            policy: PolicyParams {
                cutoff_confl: 2,
                k_confl: 50,
                inertia: 50,
                contended_cutoff: 16, // the §7.5 anti-racyInc extension
            },
            ..HybridConfig::default()
        },
    );
    let custom = run_workload(&engine, &spec);
    show("hybrid, custom (+§7.5 extension)", &custom.report);

    println!(
        "\ncoordination roundtrips: optimistic {} vs hybrid {}",
        opt.report.get(Event::CoordinationRoundtrip),
        hyb.report.get(Event::CoordinationRoundtrip)
    );
    println!("The policy converts repeated conflicts on hot objects into cheap");
    println!("pessimistic CAS transfers, and moves mistakenly-converted objects");
    println!("back to optimistic states (pess→opt = {}).", hyb.report.pess_to_opt());
}
