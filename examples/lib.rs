//! Shared helpers for the `drink` examples. The examples are standalone
//! binaries; run them with e.g. `cargo run -p drink-examples --bin quickstart`.
