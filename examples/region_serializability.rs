//! Region serializability (§5): racy code whose regions nevertheless execute
//! atomically under the hybrid RS enforcer.
//!
//! Run: `cargo run --release -p drink-examples --bin region_serializability`

use std::sync::Arc;

use drink_rs::RsEnforcer;
use drink_runtime::{Event, ObjId, Runtime, RuntimeConfig};

const ACCOUNTS: usize = 12;
const THREADS: usize = 4;
const TRANSFERS: usize = 20_000;

fn main() {
    let rt = Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(THREADS)
        .heap_objects(ACCOUNTS)
        .monitors(1)
        .build()));
    let enforcer = RsEnforcer::hybrid(rt);

    // Seed the bank.
    for i in 0..ACCOUNTS {
        enforcer.rt().obj(ObjId(i as u32)).data_write(1_000);
    }

    std::thread::scope(|s| {
        for seed in 0..THREADS {
            let enforcer = &enforcer;
            s.spawn(move || {
                let t = enforcer.attach();
                let mut x = (seed as u64 + 1) * 0x9E37_79B9;
                for _ in 0..TRANSFERS {
                    x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                    let from = ObjId(((x >> 16) % ACCOUNTS as u64) as u32);
                    let to = ObjId(((x >> 32) % ACCOUNTS as u64) as u32);
                    if from == to {
                        continue;
                    }
                    // No program locks anywhere: the *region* is the atomic
                    // unit. Bodies may re-execute, so they must be pure apart
                    // from their tracked accesses, and they propagate the
                    // Restart marker with `?`.
                    enforcer.region(t, |r| {
                        let f = r.read(from)?;
                        let amount = f.min(10);
                        r.write(from, f - amount)?;
                        let g = r.read(to)?;
                        r.write(to, g + amount)?;
                        Ok(())
                    });
                    enforcer.safepoint(t);
                }
                enforcer.detach(t);
            });
        }
    });

    let balances: Vec<u64> = (0..ACCOUNTS)
        .map(|i| enforcer.rt().obj(ObjId(i as u32)).data_read())
        .collect();
    let total: u64 = balances.iter().sum();
    let report = enforcer.rt().stats().report();
    println!("balances: {balances:?}");
    println!("total:    {total} (expected {})", ACCOUNTS * 1_000);
    println!(
        "regions:  {} executed, {} rolled back and restarted",
        report.get(Event::RegionExec),
        report.get(Event::RegionRestart)
    );
    assert_eq!(total, ACCOUNTS as u64 * 1_000);
    println!("\nMoney was conserved across {} racy transfers: every region was", THREADS * TRANSFERS);
    println!("serializable, with conflicts resolved by rollback-and-restart.");
}
