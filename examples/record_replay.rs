//! Record & replay (§4): record a racy multithreaded execution with the
//! hybrid dependence recorder, then replay its happens-before log to a
//! bit-identical final heap — twice.
//!
//! Run: `cargo run --release -p drink-examples --bin record_replay`

use drink_workloads::{record, replay, RecorderKind, WorkloadSpec};

fn main() {
    // A deliberately nasty workload: 20% of steps are unsynchronized
    // accesses to 8 hot objects (data races), on top of lock-based sharing.
    let spec = WorkloadSpec {
        name: "example-racy".into(),
        threads: 4,
        steps_per_thread: 20_000,
        racy_frac: 0.20,
        hot_objects: 8,
        locked_frac: 0.05,
        shared_read_frac: 0.05,
        ..WorkloadSpec::default()
    };

    println!("recording one execution under the hybrid recorder...");
    let recorded = record(RecorderKind::Hybrid, &spec);
    println!(
        "  wall time {:?}; {} happens-before edges over {} accesses",
        recorded.run.wall,
        recorded.log.total_edges(),
        recorded.run.report.accesses()
    );

    println!("replaying the log (program synchronization elided)...");
    let replayed = replay(&spec, recorded.log.clone());
    assert_eq!(recorded.run.heap, replayed.heap);
    println!("  replay #1 reproduced the recorded heap exactly ({:?})", replayed.wall);

    let replayed2 = replay(&spec, recorded.log);
    assert_eq!(recorded.run.heap, replayed2.heap);
    println!("  replay #2 reproduced it again ({:?})", replayed2.wall);

    println!("\nEvery cross-thread dependence of a racy execution was captured");
    println!("by the recorder's edges — the §4 soundness property.");
}
