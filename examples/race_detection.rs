//! Object-level data-race detection (the paper's §2 "detect dependences"
//! family, in the style of its reference \[39\]) as a third runtime-support
//! client on hybrid tracking.
//!
//! Run: `cargo run --release -p drink-examples --bin race_detection`

use drink_core::engine::hybrid::HybridConfig;
use drink_core::prelude::*;
use drink_race::RaceDetector;
use drink_workloads::{run_workload, runtime_for, WorkloadSpec};

fn main() {
    // A program with a deliberate bug: most sharing is lock-protected, but
    // 5% of steps touch four hot objects with no synchronization at all.
    let spec = WorkloadSpec {
        name: "buggy-app".into(),
        threads: 4,
        steps_per_thread: 40_000,
        shared_objects: 64,
        hot_objects: 4,
        monitors: 4,
        locked_frac: 0.05,
        racy_frac: 0.05,
        shared_read_frac: 0.10,
        yield_every: 16,
        ..WorkloadSpec::default()
    };

    let rt = runtime_for(&spec);
    let detector = RaceDetector::for_runtime(&rt);
    let engine = HybridEngine::with_config(rt, detector.clone(), HybridConfig::default());
    let result = run_workload(&engine, &spec);

    println!(
        "ran {} accesses across {} threads in {:?}",
        result.report.accesses(),
        spec.threads,
        result.wall
    );
    println!(
        "objects flagged with object-level races: {:?}",
        detector.racy_objects()
    );
    for r in detector.reports().iter().take(10) {
        println!("  race on {} between {} and {}", r.obj, r.first, r.second);
    }
    assert!(detector
        .racy_objects()
        .iter()
        .all(|o| (o.0 as usize) < spec.hot_objects));
    println!("\nEvery report lands inside the unsynchronized hot set [0..4) —");
    println!("no false positives on the lock-protected or read-only data, and");
    println!("detection rode along on the tracking the recorder/enforcer");
    println!("already needed (§2's premise).");
}
