//! Shared helpers for the workspace-level integration tests.
//!
//! The tests themselves live in `tests/tests/`; this library holds the
//! vector-clock machinery used to verify recorder soundness independently of
//! the replayer.

use std::collections::HashMap;

use drink_replay::RecordingLog;
use drink_workloads::{Op, WorkloadSpec};

/// A single access extracted from a spec's op streams.
#[derive(Clone, Copy, Debug)]
pub struct Access {
    /// Executing thread (op-stream index = attached mutator id).
    pub thread: usize,
    /// The thread's deterministic op index for this access.
    pub op: u64,
    /// Object accessed.
    pub obj: u32,
    /// Write?
    pub is_write: bool,
}

/// Extract every tracked access (with its op index) from a spec.
pub fn accesses_of(spec: &WorkloadSpec) -> Vec<Access> {
    let mut out = Vec::new();
    for t in 0..spec.threads {
        let mut op = 0u64;
        for o in spec.ops(t) {
            match o {
                Op::Read(obj) => {
                    out.push(Access { thread: t, op, obj: obj.0, is_write: false });
                    op += 1;
                }
                Op::Write(obj) => {
                    out.push(Access { thread: t, op, obj: obj.0, is_write: true });
                    op += 1;
                }
                Op::Lock(_) | Op::Unlock(_) => op += 1,
                Op::Work(_) | Op::Safepoint | Op::Yield => {}
            }
        }
    }
    out
}

/// Per-operation vector clocks induced by a recording log.
///
/// Simulates the replay semantics deterministically: per thread, ops run in
/// order; pre-wait bumps apply before an op's waits, post-wait (transition)
/// bumps after; each bump snapshots the thread's current vector clock, and a
/// wait for `(src, v)` joins with the snapshot of `src`'s `v`-th bump.
/// The returned table maps `(thread, op)` to the vector clock *at entry to
/// the access* (component `t` = number of `t`-ops completed).
pub struct HbClocks {
    threads: usize,
    /// clock[(t, op)] = VC at the access.
    clocks: HashMap<(usize, u64), Vec<u64>>,
}

impl HbClocks {
    /// Build clocks for `spec`'s op streams under `log`. Panics if the log
    /// deadlocks (which `RecordingLog::validate` should have excluded).
    pub fn build(spec: &WorkloadSpec, log: &RecordingLog) -> Self {
        let n = spec.threads;
        // Per-thread cursors and state.
        struct St {
            ops_total: u64,
            op: u64,
            vc: Vec<u64>,
            pre_idx: usize,
            post_idx: usize,
            sink_idx: usize,
            bump_snapshots: Vec<Vec<u64>>, // snapshot per bump, 1-based via index+1
            phase: u8,                     // 0 = pre-bumps, 1 = waits, 2 = post-bumps+exec
            done: bool,
        }
        let mut st: Vec<St> = (0..n)
            .map(|t| {
                let ops = spec
                    .ops(t)
                    .iter()
                    .filter(|o| matches!(o, Op::Read(_) | Op::Write(_) | Op::Lock(_) | Op::Unlock(_)))
                    .count() as u64;
                St {
                    ops_total: ops,
                    op: 0,
                    vc: vec![0; n],
                    pre_idx: 0,
                    post_idx: 0,
                    sink_idx: 0,
                    bump_snapshots: Vec::new(),
                    phase: 0,
                    done: false,
                }
            })
            .collect();
        let mut clocks = HashMap::new();

        // Round-robin scheduler: a thread advances until it must wait on a
        // bump that has not happened yet.
        let mut progressed = true;
        while progressed {
            progressed = false;
            for t in 0..n {
                loop {
                    // Split borrows: read the other threads' snapshots via raw
                    // indexing before mutating st[t].
                    if st[t].done {
                        break;
                    }
                    let tl = &log.threads[t];
                    let at_end = st[t].op >= st[t].ops_total;
                    match st[t].phase {
                        0 => {
                            // Apply pre-bumps pinned ≤ current op.
                            let op = st[t].op;
                            if let Some(&(p, k)) = tl.sources_pre.get(st[t].pre_idx) {
                                if p <= op || at_end {
                                    for _ in 0..k {
                                        let snap = st[t].vc.clone();
                                        st[t].bump_snapshots.push(snap);
                                    }
                                    st[t].pre_idx += 1;
                                    progressed = true;
                                    continue;
                                }
                            }
                            st[t].phase = 1;
                            continue;
                        }
                        1 => {
                            // Waits pinned at the current op.
                            let op = st[t].op;
                            let mut blocked = false;
                            if let Some(entry) = tl.sinks.get(st[t].sink_idx) {
                                if entry.op <= op && !at_end {
                                    // All waits of this entry must be satisfiable.
                                    let mut joins: Vec<Vec<u64>> = Vec::new();
                                    for &(src, v) in &entry.waits {
                                        let si = src.index();
                                        if (st[si].bump_snapshots.len() as u64) < v {
                                            blocked = true;
                                            break;
                                        }
                                        joins.push(st[si].bump_snapshots[(v - 1) as usize].clone());
                                    }
                                    if !blocked {
                                        for j in joins {
                                            for (a, b) in st[t].vc.iter_mut().zip(&j) {
                                                *a = (*a).max(*b);
                                            }
                                        }
                                        st[t].sink_idx += 1;
                                        progressed = true;
                                        continue;
                                    }
                                } else {
                                    st[t].phase = 2;
                                    continue;
                                }
                            } else {
                                st[t].phase = 2;
                                continue;
                            }
                            if blocked {
                                break; // try another thread
                            }
                        }
                        _ => {
                            // Post-bumps pinned ≤ current op, then execute.
                            let op = st[t].op;
                            if let Some(&(p, k)) = tl.sources_post.get(st[t].post_idx) {
                                if p <= op || at_end {
                                    for _ in 0..k {
                                        let snap = st[t].vc.clone();
                                        st[t].bump_snapshots.push(snap);
                                    }
                                    st[t].post_idx += 1;
                                    progressed = true;
                                    continue;
                                }
                            }
                            if at_end {
                                st[t].done = true;
                                progressed = true;
                                break;
                            }
                            // Execute op: record the entry clock, then advance.
                            clocks.insert((t, op), st[t].vc.clone());
                            st[t].vc[t] = op + 1;
                            st[t].op += 1;
                            st[t].phase = 0;
                            progressed = true;
                            continue;
                        }
                    }
                }
            }
        }
        for (t, s) in st.iter().enumerate() {
            assert!(s.done, "T{t} deadlocked in the happens-before simulation");
        }
        HbClocks { threads: n, clocks }
    }

    /// Does access `a` happen before access `b` per the log?
    pub fn ordered(&self, a: &Access, b: &Access) -> bool {
        let vcb = &self.clocks[&(b.thread, b.op)];
        // a completed before b starts iff b's entry clock covers a's op.
        vcb[a.thread] > a.op
    }

    /// Number of threads.
    pub fn threads(&self) -> usize {
        self.threads
    }
}
