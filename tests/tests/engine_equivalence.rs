//! Cross-engine equivalence and quiescence invariants.
//!
//! The unperturbed tests here pin the baseline equivalences; the
//! `*_under_chaos` tests re-run the same oracles through `drink-check`'s
//! seeded schedule-perturbation layer, which is where schedule-dependent
//! protocol bugs actually surface.

use drink_check::{differential_check, replay_check, rs_check, run_cell, MATRIX_ENGINES};
use drink_core::prelude::Tracker;
use drink_core::word::{Kind, StateWord};
use drink_workloads::{
    chaos_disjoint, chaos_handoff, chaos_mix, run_kind, run_rs, EngineKind, RsKind, WorkloadSpec,
};

/// A workload whose final heap is schedule-independent: threads touch only
/// their private partitions plus a read-only shared region.
fn disjoint_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "disjoint".into(),
        threads: 4,
        steps_per_thread: 4_000,
        locked_frac: 0.0,
        racy_frac: 0.0,
        shared_read_frac: 0.15,
        ..WorkloadSpec::default()
    }
}

#[test]
fn disjoint_workload_heap_identical_across_all_engines() {
    let spec = disjoint_spec();
    let base = run_kind(EngineKind::Baseline, &spec);
    for kind in EngineKind::FIGURE7 {
        let r = run_kind(kind, &spec);
        assert_eq!(r.heap, base.heap, "{kind:?} changed program semantics");
    }
    // The enforcers run the same regions; region boundaries don't change
    // values for a schedule-independent program.
    for kind in [RsKind::Optimistic, RsKind::Hybrid] {
        let r = run_rs(kind, &spec);
        assert_eq!(r.heap, base.heap, "{} changed program semantics", kind.name());
    }
}

/// After any run, every state word must be quiescent: no Int, no pessimistic
/// locks, no LOCKED sentinel — instrumentation never leaks a critical
/// section.
fn assert_quiescent(kind: EngineKind, spec: &WorkloadSpec) {
    let r = run_kind(kind, spec);
    // Reconstruct states from a fresh run (RunResult doesn't carry them), so
    // instead drive the engine directly here.
    drop(r);
    let rt = drink_workloads::runtime_for(spec);
    let engine_heap = match kind {
        EngineKind::Hybrid => {
            let e = drink_core::prelude::HybridEngine::new(rt);
            drink_workloads::run_workload(&e, spec);
            e.rt().clone()
        }
        EngineKind::Optimistic => {
            let e = drink_core::prelude::OptimisticEngine::new(rt);
            drink_workloads::run_workload(&e, spec);
            e.rt().clone()
        }
        EngineKind::Pessimistic => {
            let e = drink_core::prelude::PessimisticEngine::new(rt);
            drink_workloads::run_workload(&e, spec);
            e.rt().clone()
        }
        _ => unreachable!(),
    };
    for (id, obj) in engine_heap.heap().iter() {
        let w = StateWord(obj.state().load(std::sync::atomic::Ordering::SeqCst));
        assert!(!w.is_locked_sentinel(), "{kind:?}: {id} left LOCKED");
        assert!(!w.is_int(), "{kind:?}: {id} left Int: {w:?}");
        assert!(
            !w.is_pess_locked(),
            "{kind:?}: {id} left pessimistically locked: {w:?} (lock-buffer leak)"
        );
        // Kind must decode to a legal state.
        let _ = w.kind() == Kind::WrEx;
    }
}

#[test]
fn racy_runs_end_quiescent_under_every_engine() {
    let spec = WorkloadSpec {
        name: "quiesce".into(),
        threads: 4,
        steps_per_thread: 3_000,
        racy_frac: 0.25,
        hot_objects: 6,
        locked_frac: 0.05,
        shared_read_frac: 0.05,
        ..WorkloadSpec::default()
    };
    for kind in [
        EngineKind::Pessimistic,
        EngineKind::Optimistic,
        EngineKind::Hybrid,
    ] {
        assert_quiescent(kind, &spec);
    }
}

#[test]
fn transition_counts_partition_accesses() {
    // Every access resolves as exactly one transition category; the
    // contended marker is extra. This pins the Table 2 accounting.
    use drink_runtime::Event;
    let spec = WorkloadSpec {
        name: "partition".into(),
        threads: 4,
        steps_per_thread: 4_000,
        racy_frac: 0.15,
        locked_frac: 0.05,
        shared_read_frac: 0.10,
        ..WorkloadSpec::default()
    };
    for kind in [
        EngineKind::Pessimistic,
        EngineKind::Optimistic,
        EngineKind::Hybrid,
        EngineKind::HybridInfiniteCutoff,
    ] {
        let r = run_kind(kind, &spec).report;
        // `SeqlockValidated` is the one category that is not a transition:
        // the read completed against a standing RdSh state with no state
        // change at all (DESIGN.md §12). Retries/fallbacks are not terminal —
        // a fallback resolves through one of the other categories.
        let transitions = r.get(Event::OptSameState)
            + r.get(Event::OptUpgrading)
            + r.get(Event::OptFence)
            + r.opt_conflicting()
            + r.pess_uncontended()
            + r.get(Event::SeqlockValidated);
        assert_eq!(
            transitions,
            r.accesses(),
            "{kind:?}: transition categories must partition accesses"
        );
    }
}

// --- Chaos-seeded differential checks (via drink-check) ---

#[test]
fn differential_oracle_holds_under_chaos() {
    // Disjoint spec: full oracle (access counts + heap vs baseline + zero
    // conflicts). Seed doubles as the chaos decision-stream seed.
    differential_check(&chaos_disjoint(0x51), 0x51)
        .unwrap_or_else(|a| panic!("{}: {}", a.engine, a.failure));
}

#[test]
fn perturbed_matrix_cells_stay_quiescent() {
    // Racy + locked specs under perturbation: every engine must complete,
    // end quiescent, and leak no coordination requests.
    for spec in [chaos_mix(0x52), chaos_handoff(0x53)] {
        for kind in MATRIX_ENGINES {
            let cell = run_cell(kind, &spec, 0x54)
                .unwrap_or_else(|a| panic!("{} / {}: {}", spec.name, a.engine, a.failure));
            assert!(
                cell.traces.iter().map(Vec::len).sum::<usize>() > 0,
                "chaos layer recorded no decisions — hooks not wired?"
            );
        }
    }
}

#[test]
fn replay_and_rs_oracles_hold_under_chaos() {
    replay_check(&chaos_mix(0x55)).unwrap();
    rs_check(&chaos_handoff(0x56), 0x56).unwrap();
}
