//! Cross-engine equivalence and quiescence invariants.

use drink_core::prelude::Tracker;
use drink_core::word::{Kind, StateWord};
use drink_workloads::{run_kind, run_rs, EngineKind, RsKind, WorkloadSpec};

/// A workload whose final heap is schedule-independent: threads touch only
/// their private partitions plus a read-only shared region.
fn disjoint_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "disjoint".into(),
        threads: 4,
        steps_per_thread: 4_000,
        locked_frac: 0.0,
        racy_frac: 0.0,
        shared_read_frac: 0.15,
        ..WorkloadSpec::default()
    }
}

#[test]
fn disjoint_workload_heap_identical_across_all_engines() {
    let spec = disjoint_spec();
    let base = run_kind(EngineKind::Baseline, &spec);
    for kind in EngineKind::FIGURE7 {
        let r = run_kind(kind, &spec);
        assert_eq!(r.heap, base.heap, "{kind:?} changed program semantics");
    }
    // The enforcers run the same regions; region boundaries don't change
    // values for a schedule-independent program.
    for kind in [RsKind::Optimistic, RsKind::Hybrid] {
        let r = run_rs(kind, &spec);
        assert_eq!(r.heap, base.heap, "{} changed program semantics", kind.name());
    }
}

/// After any run, every state word must be quiescent: no Int, no pessimistic
/// locks, no LOCKED sentinel — instrumentation never leaks a critical
/// section.
fn assert_quiescent(kind: EngineKind, spec: &WorkloadSpec) {
    let r = run_kind(kind, spec);
    // Reconstruct states from a fresh run (RunResult doesn't carry them), so
    // instead drive the engine directly here.
    drop(r);
    let rt = drink_workloads::runtime_for(spec);
    let engine_heap = match kind {
        EngineKind::Hybrid => {
            let e = drink_core::prelude::HybridEngine::new(rt);
            drink_workloads::run_workload(&e, spec);
            e.rt().clone()
        }
        EngineKind::Optimistic => {
            let e = drink_core::prelude::OptimisticEngine::new(rt);
            drink_workloads::run_workload(&e, spec);
            e.rt().clone()
        }
        EngineKind::Pessimistic => {
            let e = drink_core::prelude::PessimisticEngine::new(rt);
            drink_workloads::run_workload(&e, spec);
            e.rt().clone()
        }
        _ => unreachable!(),
    };
    for (id, obj) in engine_heap.heap().iter() {
        let w = StateWord(obj.state().load(std::sync::atomic::Ordering::SeqCst));
        assert!(!w.is_locked_sentinel(), "{kind:?}: {id} left LOCKED");
        assert!(!w.is_int(), "{kind:?}: {id} left Int: {w:?}");
        assert!(
            !w.is_pess_locked(),
            "{kind:?}: {id} left pessimistically locked: {w:?} (lock-buffer leak)"
        );
        // Kind must decode to a legal state.
        let _ = w.kind() == Kind::WrEx;
    }
}

#[test]
fn racy_runs_end_quiescent_under_every_engine() {
    let spec = WorkloadSpec {
        name: "quiesce".into(),
        threads: 4,
        steps_per_thread: 3_000,
        racy_frac: 0.25,
        hot_objects: 6,
        locked_frac: 0.05,
        shared_read_frac: 0.05,
        ..WorkloadSpec::default()
    };
    for kind in [
        EngineKind::Pessimistic,
        EngineKind::Optimistic,
        EngineKind::Hybrid,
    ] {
        assert_quiescent(kind, &spec);
    }
}

#[test]
fn transition_counts_partition_accesses() {
    // Every access resolves as exactly one transition category; the
    // contended marker is extra. This pins the Table 2 accounting.
    use drink_runtime::Event;
    let spec = WorkloadSpec {
        name: "partition".into(),
        threads: 4,
        steps_per_thread: 4_000,
        racy_frac: 0.15,
        locked_frac: 0.05,
        shared_read_frac: 0.10,
        ..WorkloadSpec::default()
    };
    for kind in [
        EngineKind::Pessimistic,
        EngineKind::Optimistic,
        EngineKind::Hybrid,
        EngineKind::HybridInfiniteCutoff,
    ] {
        let r = run_kind(kind, &spec).report;
        let transitions = r.get(Event::OptSameState)
            + r.get(Event::OptUpgrading)
            + r.get(Event::OptFence)
            + r.opt_conflicting()
            + r.pess_uncontended();
        assert_eq!(
            transitions,
            r.accesses(),
            "{kind:?}: transition categories must partition accesses"
        );
    }
}
