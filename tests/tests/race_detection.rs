//! Workload-level validation of the object-level race detector: racy
//! profiles report races on their hot set; DRF profiles report none.

use std::sync::Arc;

use drink_core::engine::hybrid::HybridConfig;
use drink_core::prelude::*;
use drink_race::RaceDetector;
use drink_workloads::{run_workload, runtime_for, WorkloadSpec};

fn detect_on(spec: &WorkloadSpec, hybrid: bool) -> RaceDetector {
    let rt = runtime_for(spec);
    let det = RaceDetector::for_runtime(&rt);
    if hybrid {
        let engine = HybridEngine::with_config(rt, det.clone(), HybridConfig::default());
        run_workload(&engine, spec);
    } else {
        let engine = OptimisticEngine::with_support(rt, det.clone());
        run_workload(&engine, spec);
    }
    det
}

fn racy_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "race-racy".into(),
        threads: 4,
        steps_per_thread: 3_000,
        shared_objects: 32,
        hot_objects: 4,
        local_objects: 32,
        monitors: 4,
        racy_frac: 0.2,
        locked_frac: 0.05,
        shared_read_frac: 0.05,
        yield_every: 8,
        ..WorkloadSpec::default()
    }
}

#[test]
fn racy_workload_reports_races_on_the_hot_set_only() {
    for hybrid in [false, true] {
        let spec = racy_spec();
        let det = detect_on(&spec, hybrid);
        let racy = det.racy_objects();
        assert!(!racy.is_empty(), "hybrid={hybrid}: races must be found");
        for o in &racy {
            assert!(
                (o.0 as usize) < spec.hot_objects,
                "hybrid={hybrid}: false positive outside the racy hot set: {o} \
                 (hot set = 0..{})",
                spec.hot_objects
            );
        }
    }
}

#[test]
fn drf_workload_reports_no_races() {
    for hybrid in [false, true] {
        let spec = WorkloadSpec {
            name: "race-drf".into(),
            threads: 4,
            steps_per_thread: 3_000,
            shared_objects: 32,
            hot_objects: 4,
            local_objects: 32,
            monitors: 4,
            racy_frac: 0.0,
            locked_frac: 0.10,
            shared_read_frac: 0.0,
            yield_every: 8,
            ..WorkloadSpec::default()
        };
        let det = detect_on(&spec, hybrid);
        assert_eq!(
            det.race_count(),
            0,
            "hybrid={hybrid}: DRF workload produced false positives: {:?}",
            det.reports()
        );
    }
}

#[test]
fn detector_composes_with_single_thread_runs() {
    let spec = WorkloadSpec {
        name: "race-single".into(),
        threads: 1,
        steps_per_thread: 2_000,
        racy_frac: 0.3, // "racy" accesses with one thread are not races
        hot_objects: 4,
        ..WorkloadSpec::default()
    };
    let rt: Arc<drink_runtime::Runtime> = runtime_for(&spec);
    let det = RaceDetector::for_runtime(&rt);
    let engine = HybridEngine::with_config(rt, det.clone(), HybridConfig::default());
    run_workload(&engine, &spec);
    assert_eq!(det.race_count(), 0);
}
