//! Recorder soundness, verified independently of the replayer: the happens-
//! before edges in a recording must *order every conflicting access pair* —
//! the paper's claim that state transitions "establish happens-before edges
//! that transitively imply all of an execution's cross-thread dependences"
//! (§2, citing [11]).
//!
//! Method: build per-operation vector clocks from the log alone
//! ([`drink_integration_tests::HbClocks`]) and check that for every pair of
//! accesses to the same object from different threads, at least one of which
//! is a write, the log orders them one way or the other.

use drink_integration_tests::{accesses_of, HbClocks};
use drink_workloads::{record, RecorderKind, WorkloadSpec};

fn assert_all_conflicts_ordered(spec: &WorkloadSpec, kind: RecorderKind) {
    let outcome = record(kind, spec);
    outcome.log.validate().expect("log well-formed");
    let hb = HbClocks::build(spec, &outcome.log);

    // Group accesses by object; check all cross-thread conflicting pairs.
    let accesses = accesses_of(spec);
    let mut by_obj: std::collections::HashMap<u32, Vec<usize>> = Default::default();
    for (i, a) in accesses.iter().enumerate() {
        by_obj.entry(a.obj).or_default().push(i);
    }
    let mut checked = 0u64;
    for idxs in by_obj.values() {
        for (pos, &i) in idxs.iter().enumerate() {
            for &j in &idxs[pos + 1..] {
                let (a, b) = (&accesses[i], &accesses[j]);
                if a.thread == b.thread || (!a.is_write && !b.is_write) {
                    continue;
                }
                checked += 1;
                assert!(
                    hb.ordered(a, b) || hb.ordered(b, a),
                    "{:?} recorder missed a dependence between {:?} and {:?} on {}",
                    kind,
                    a,
                    b,
                    spec.name
                );
            }
        }
    }
    assert!(checked > 0, "test must actually exercise conflicting pairs");
}

fn racy_spec(name: &str, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        name: name.into(),
        threads: 3,
        steps_per_thread: 250,
        shared_objects: 16,
        hot_objects: 4,
        local_objects: 8,
        monitors: 2,
        racy_frac: 0.30,
        locked_frac: 0.10,
        shared_read_frac: 0.10,
        seed,
        ..WorkloadSpec::default()
    }
}

#[test]
fn optimistic_recorder_orders_all_conflicts() {
    for seed in 0..4 {
        assert_all_conflicts_ordered(&racy_spec("sound-opt", 0x5000 + seed), RecorderKind::Optimistic);
    }
}

#[test]
fn hybrid_recorder_orders_all_conflicts() {
    for seed in 0..4 {
        assert_all_conflicts_ordered(&racy_spec("sound-hyb", 0x6000 + seed), RecorderKind::Hybrid);
    }
}

#[test]
fn hybrid_recorder_orders_conflicts_in_pessimistic_regime() {
    // Heavier per-object conflict counts so the policy actually moves hot
    // objects to pessimistic states, exercising the release-clock edges of
    // §4.2 rather than only coordination edges.
    let spec = WorkloadSpec {
        name: "sound-pess-regime".into(),
        threads: 3,
        steps_per_thread: 600,
        shared_objects: 8,
        hot_objects: 2,
        local_objects: 8,
        monitors: 2,
        racy_frac: 0.4,
        locked_frac: 0.1,
        seed: 0x77,
        ..WorkloadSpec::default()
    };
    let outcome = record(RecorderKind::Hybrid, &spec);
    assert!(
        outcome.run.report.pess_uncontended() > 0,
        "regime check: pessimistic transitions must occur"
    );
    assert_all_conflicts_ordered(&spec, RecorderKind::Hybrid);
}

#[test]
fn read_shared_fences_are_ordered_after_the_writer() {
    // RdSh-heavy shape: many readers of objects that a writer occasionally
    // kills back to WrEx — exercises fence edges and the epoch chain.
    let spec = WorkloadSpec {
        name: "sound-rdsh".into(),
        threads: 4,
        steps_per_thread: 400,
        shared_objects: 12,
        hot_objects: 6,
        local_objects: 8,
        monitors: 2,
        racy_frac: 0.2,
        write_frac: 0.15,
        shared_read_frac: 0.3,
        seed: 0x88,
        ..WorkloadSpec::default()
    };
    assert_all_conflicts_ordered(&spec, RecorderKind::Optimistic);
    assert_all_conflicts_ordered(&spec, RecorderKind::Hybrid);
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    fn arb_racy_spec() -> impl Strategy<Value = WorkloadSpec> {
        (
            2usize..4,
            120usize..400,
            1usize..5,    // hot objects
            0.05f64..0.5, // racy
            0.0f64..0.2,  // locked
            0.0f64..0.3,  // shared reads
            0.1f64..0.9,  // write frac
            any::<u64>(),
        )
            .prop_map(
                |(threads, steps, hot, racy, locked, shared_read, write_frac, seed)| {
                    WorkloadSpec {
                        name: format!("prop-sound-{seed:x}"),
                        threads,
                        steps_per_thread: steps,
                        shared_objects: 12,
                        hot_objects: hot,
                        local_objects: 8,
                        monitors: 2,
                        racy_frac: racy,
                        locked_frac: locked,
                        shared_read_frac: shared_read,
                        write_frac,
                        seed,
                        ..WorkloadSpec::default()
                    }
                },
            )
    }

    proptest! {
        #![proptest_config(ProptestConfig {
            cases: 6,
            max_shrink_iters: 8,
            .. ProptestConfig::default()
        })]

        /// For ANY racy workload shape, both recorders' logs order every
        /// conflicting access pair (checked via the vector-clock simulator,
        /// independent of the replayer).
        #[test]
        fn prop_recorders_order_all_conflicts(spec in arb_racy_spec(), hybrid in any::<bool>()) {
            let kind = if hybrid { RecorderKind::Hybrid } else { RecorderKind::Optimistic };
            let outcome = record(kind, &spec);
            outcome.log.validate().map_err(|e| TestCaseError::fail(e))?;
            let hb = HbClocks::build(&spec, &outcome.log);
            let accesses = accesses_of(&spec);
            let mut by_obj: std::collections::HashMap<u32, Vec<usize>> = Default::default();
            for (i, a) in accesses.iter().enumerate() {
                by_obj.entry(a.obj).or_default().push(i);
            }
            for idxs in by_obj.values() {
                for (pos, &i) in idxs.iter().enumerate() {
                    for &j in &idxs[pos + 1..] {
                        let (a, b) = (&accesses[i], &accesses[j]);
                        if a.thread == b.thread || (!a.is_write && !b.is_write) {
                            continue;
                        }
                        prop_assert!(
                            hb.ordered(a, b) || hb.ordered(b, a),
                            "missed dependence between {a:?} and {b:?}"
                        );
                    }
                }
            }
        }
    }
}
