//! Recording logs are artifacts: they serialize, survive a round trip
//! through JSON, and replay identically afterwards — the "record now,
//! replay elsewhere/offline" use case of §4 (e.g. replication-based fault
//! tolerance, offline debugging).

use drink_replay::RecordingLog;
use drink_workloads::{record, replay, RecorderKind, WorkloadSpec};

fn racy_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "persist".into(),
        threads: 4,
        steps_per_thread: 1_500,
        racy_frac: 0.15,
        hot_objects: 6,
        locked_frac: 0.05,
        shared_read_frac: 0.05,
        ..WorkloadSpec::default()
    }
}

#[test]
fn log_round_trips_through_json_and_replays() {
    let spec = racy_spec();
    let recorded = record(RecorderKind::Hybrid, &spec);

    let json = serde_json::to_string(&recorded.log).expect("serialize");
    let restored: RecordingLog = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(restored, recorded.log);
    restored.validate().expect("restored log valid");

    let replayed = replay(&spec, restored);
    assert_eq!(recorded.run.heap, replayed.heap);
}

#[test]
fn log_size_scales_with_dependences_not_accesses() {
    // The recorder's selling point (§4.2): log size tracks cross-thread
    // dependences, which are orders of magnitude rarer than accesses.
    let spec = racy_spec();
    let recorded = record(RecorderKind::Hybrid, &spec);
    let accesses = recorded.run.report.accesses() as usize;
    let edges = recorded.log.total_edges();
    assert!(edges > 0);
    assert!(
        edges * 10 < accesses,
        "log must be far smaller than the access count: {edges} edges vs {accesses} accesses"
    );

    // And a low-conflict run's log is near-empty.
    let quiet = WorkloadSpec {
        name: "persist-quiet".into(),
        racy_frac: 0.0,
        locked_frac: 0.0,
        shared_read_frac: 0.0,
        ..racy_spec()
    };
    let recorded = record(RecorderKind::Hybrid, &quiet);
    assert!(
        recorded.log.total_edges() <= 4,
        "thread-local program should record almost nothing: {}",
        recorded.log.total_edges()
    );
}

#[test]
fn both_recorders_produce_interchangeable_heaps() {
    // The two recorders log different edges for the same program, but both
    // logs replay the *same* recorded execution's heap (each its own).
    let spec = racy_spec();
    for kind in [RecorderKind::Optimistic, RecorderKind::Hybrid] {
        let recorded = record(kind, &spec);
        let replayed = replay(&spec, recorded.log);
        assert_eq!(
            recorded.run.heap, replayed.heap,
            "{:?} log failed to reproduce its run",
            kind
        );
    }
}
