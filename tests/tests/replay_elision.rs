//! §7.6's synchronization-elision claim: "the replayer elides program
//! synchronization operations and replays only the recorded dependences, so
//! it can outperform baseline execution for programs dominated by
//! coarse-grained, overly conservative synchronization" (the paper's
//! pjbb2005 observation).

use drink_workloads::{record, replay_with, run_kind, EngineKind, RecorderKind, WorkloadSpec};

/// A program strangled by one fat lock: every step is a critical section on
/// a single monitor with a long body, so the baseline spends its life
/// parking and waking.
fn fat_lock_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "fat-lock".into(),
        threads: 4,
        steps_per_thread: 400,
        shared_objects: 8,
        hot_objects: 8,
        local_objects: 8,
        monitors: 1,
        locked_frac: 1.0,
        shared_read_frac: 0.0, // every step is a CS; no read-region slice
        cs_len: 2,
        cs_work: 2_000,
        local_work: 0,
        safepoint_every: 1,
        monitor_spin: Some(4), // park quickly, like a fat lock
        ..WorkloadSpec::default()
    }
}

#[test]
fn elided_replay_reproduces_and_skips_lock_parking() {
    let spec = fat_lock_spec();
    let recorded = record(RecorderKind::Hybrid, &spec);

    let elided = replay_with(&spec, recorded.log.clone(), true);
    assert_eq!(recorded.run.heap, elided.heap, "elided replay must reproduce");

    let real_sync = replay_with(&spec, recorded.log, false);
    assert_eq!(recorded.run.heap, real_sync.heap, "non-elided replay must reproduce");

    // The directional claim (soft on wall clock, which is noisy on shared
    // hosts): elision removes every monitor operation, so the elided replay
    // should not be meaningfully slower than the lock-taking one.
    let ratio = elided.wall.as_secs_f64() / real_sync.wall.as_secs_f64();
    assert!(
        ratio < 1.5,
        "elided replay should not lose badly to real-lock replay: ratio {ratio:.2}"
    );
}

#[test]
fn elided_replay_of_fat_lock_program_is_competitive_with_baseline() {
    // The paper's pjbb2005 effect. Medians over a few runs to shave noise.
    let spec = fat_lock_spec();
    let recorded = record(RecorderKind::Hybrid, &spec);

    let mut baseline: Vec<_> = (0..3)
        .map(|_| run_kind(EngineKind::Baseline, &spec).wall)
        .collect();
    baseline.sort();
    let mut replayed: Vec<_> = (0..3)
        .map(|_| replay_with(&spec, recorded.log.clone(), true).wall)
        .collect();
    replayed.sort();

    let base = baseline[1].as_secs_f64();
    let rep = replayed[1].as_secs_f64();
    // Elision removes parking, but the replay still performs all the CS work
    // plus the recorded cross-thread waits — and each of those waits is a
    // spin on another thread's clock, which on an oversubscribed (often
    // single-core) CI host costs a scheduler rotation the baseline's
    // park/unpark does not pay. The assertion therefore guards the *order of
    // magnitude* claim only: reintroducing per-CS parking into the elided
    // path costs 10-100x on this spec, well clear of the 5x bound, while
    // scheduler-rotation noise measures 2-3x.
    assert!(
        rep < base * 5.0,
        "elided replay should be in the baseline's league for a fat-lock \
         program: baseline {base:.4}s vs replay {rep:.4}s"
    );
    println!("baseline {base:.4}s, elided replay {rep:.4}s ({:.2}x)", rep / base);
}
