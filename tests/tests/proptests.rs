//! Property-based tests over randomly generated workload shapes.
//!
//! Case counts are kept small — each case is a real multithreaded run — but
//! every property quantifies over the whole spec space: thread counts,
//! object-partition sizes, conflict mixes, and policy parameters.

use proptest::prelude::*;

use drink_core::engine::hybrid::{HybridConfig, HybridEngine};
use drink_core::policy::PolicyParams;
use drink_core::support::NullSupport;
use drink_runtime::Event;
use drink_workloads::{
    record, replay, run_kind, run_workload, runtime_for, EngineKind, RecorderKind, WorkloadSpec,
};

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        2usize..5,         // threads
        200usize..900,     // steps
        1usize..6,         // hot objects
        0.0f64..0.4,       // racy
        0.0f64..0.2,       // locked
        0.0f64..0.3,       // shared reads
        0.1f64..0.9,       // write fraction
        any::<u64>(),      // seed
    )
        .prop_map(
            |(threads, steps, hot, racy, locked, shared_read, write_frac, seed)| WorkloadSpec {
                name: format!("prop-{seed:x}"),
                threads,
                steps_per_thread: steps,
                shared_objects: 24,
                hot_objects: hot,
                local_objects: 16,
                monitors: 3,
                racy_frac: racy,
                locked_frac: locked,
                shared_read_frac: shared_read,
                write_frac,
                seed,
                ..WorkloadSpec::default()
            },
        )
}

fn arb_policy() -> impl Strategy<Value = PolicyParams> {
    (1u32..64, 1u32..2000, 1u32..2000).prop_map(|(cutoff, k, inertia)| PolicyParams {
        cutoff_confl: cutoff,
        k_confl: k,
        inertia,
        contended_cutoff: u32::MAX,
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        max_shrink_iters: 16,
        .. ProptestConfig::default()
    })]

    /// Replay of any recorded execution reproduces its heap, for both
    /// recorder configurations.
    #[test]
    fn prop_record_replay_deterministic(spec in arb_spec(), hybrid in any::<bool>()) {
        let kind = if hybrid { RecorderKind::Hybrid } else { RecorderKind::Optimistic };
        let rec = record(kind, &spec);
        let rep = replay(&spec, rec.log);
        prop_assert_eq!(rec.run.heap, rep.heap);
    }

    /// Transition categories partition accesses under any spec and any
    /// policy parameters.
    #[test]
    fn prop_transitions_partition_accesses(spec in arb_spec(), policy in arb_policy()) {
        let rt = runtime_for(&spec);
        let engine = HybridEngine::with_config(
            rt,
            NullSupport,
            HybridConfig { policy, ..HybridConfig::default() },
        );
        let r = run_workload(&engine, &spec).report;
        // Seqlock-validated reads resolve with no transition at all
        // (DESIGN.md §12); they are the one non-transition category.
        let transitions = r.get(Event::OptSameState)
            + r.get(Event::OptUpgrading)
            + r.get(Event::OptFence)
            + r.opt_conflicting()
            + r.pess_uncontended()
            + r.get(Event::SeqlockValidated);
        prop_assert_eq!(transitions, r.accesses());
        // Policy moves are bounded by the one-way valve: at most one
        // opt→pess and one pess→opt per object.
        prop_assert!(r.opt_to_pess() <= spec.heap_objects() as u64);
        prop_assert!(r.pess_to_opt() <= r.opt_to_pess());
    }

    /// All engines count the same number of accesses for the same spec
    /// (instrumentation never skips or duplicates a program access).
    #[test]
    fn prop_access_counts_agree(spec in arb_spec()) {
        let expected: usize = (0..spec.threads)
            .map(|t| WorkloadSpec::count_accesses(&spec.ops(t)))
            .sum();
        for kind in [EngineKind::Pessimistic, EngineKind::Optimistic, EngineKind::Hybrid] {
            let r = run_kind(kind, &spec).report;
            prop_assert_eq!(r.accesses(), expected as u64, "{:?}", kind);
        }
    }

    /// Object-level-DRF workloads never trigger contended transitions under
    /// hybrid tracking (the §3.1 deferred-unlocking assumption), regardless
    /// of policy parameters.
    #[test]
    fn prop_drf_implies_no_contention(
        threads in 2usize..5,
        steps in 200usize..800,
        locked in 0.02f64..0.3,
        policy in arb_policy(),
        seed in any::<u64>(),
    ) {
        let spec = WorkloadSpec {
            name: "prop-drf".into(),
            threads,
            steps_per_thread: steps,
            shared_objects: 24,
            hot_objects: 4,
            local_objects: 16,
            monitors: 3,
            racy_frac: 0.0,
            locked_frac: locked,
            shared_read_frac: 0.0,
            seed,
            ..WorkloadSpec::default()
        };
        let rt = runtime_for(&spec);
        let engine = HybridEngine::with_config(
            rt,
            NullSupport,
            HybridConfig { policy, ..HybridConfig::default() },
        );
        let r = run_workload(&engine, &spec).report;
        prop_assert_eq!(r.pess_contended(), 0);
    }
}
