//! Monitor wait/notify through the tracking engines: `Object.wait()` is
//! simultaneously a PSRO (its release half) and a blocking safe point, and
//! parked waiters must be coordinatable implicitly.

use drink_core::prelude::*;
use drink_runtime::{Event, MonitorId, ObjId, Runtime, RuntimeConfig};
use std::sync::Arc;

/// A bounded single-slot queue built from tracked objects and one monitor:
/// producers/consumers block on `wait` and hand data through tracked writes.
fn run_producer_consumer<T: Tracker + Sync>(engine: &T, items: u64) -> u64 {
    let m = MonitorId(0);
    let slot_full = ObjId(0); // 0 = empty, 1 = full (tracked)
    let slot_value = ObjId(1); // payload (tracked)
    let consumed_sum = std::sync::atomic::AtomicU64::new(0);

    std::thread::scope(|s| {
        // Producer.
        s.spawn(|| {
            let sess = Session::attach(engine);
            for i in 1..=items {
                sess.lock(m);
                while sess.read(slot_full) == 1 {
                    sess.wait(m);
                }
                sess.write(slot_value, i * 7);
                sess.write(slot_full, 1);
                sess.notify_all(m);
                sess.unlock(m);
                sess.safepoint();
            }
        });
        // Consumer.
        let consumed = &consumed_sum;
        s.spawn(move || {
            let sess = Session::attach(engine);
            let mut got = 0;
            while got < items {
                sess.lock(m);
                while sess.read(slot_full) == 0 {
                    sess.wait(m);
                }
                let v = sess.read(slot_value);
                sess.write(slot_full, 0);
                sess.notify_all(m);
                sess.unlock(m);
                consumed.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                got += 1;
                sess.safepoint();
            }
        });
    });
    consumed_sum.load(std::sync::atomic::Ordering::Relaxed)
}

#[test]
fn producer_consumer_under_hybrid_tracking() {
    const ITEMS: u64 = 500;
    let rt = Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(2)
        .heap_objects(4)
        .monitors(1)
        .build()));
    let engine = HybridEngine::new(rt);
    let sum = run_producer_consumer(&engine, ITEMS);
    assert_eq!(sum, 7 * ITEMS * (ITEMS + 1) / 2, "every item exactly once");
    let r = engine.rt().stats().report();
    // Waits are PSROs: release clocks advanced well beyond the lock count.
    assert!(r.get(Event::MonitorRelease) >= 2 * ITEMS);
    // The tracked slot ping-pongs; under hybrid it should go pessimistic.
    assert!(r.opt_to_pess() >= 1 || r.opt_conflicting() > 0);
}

#[test]
fn producer_consumer_under_optimistic_tracking() {
    const ITEMS: u64 = 300;
    let rt = Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(2)
        .heap_objects(4)
        .monitors(1)
        .build()));
    let engine = OptimisticEngine::new(rt);
    let sum = run_producer_consumer(&engine, ITEMS);
    assert_eq!(sum, 7 * ITEMS * (ITEMS + 1) / 2);
    // Parked waiters are coordinated with implicitly at least occasionally,
    // or respond explicitly — either way conflicts resolve.
    let r = engine.rt().stats().report();
    assert!(r.opt_conflicting() > 0);
}

#[test]
fn producer_consumer_under_pessimistic_tracking() {
    const ITEMS: u64 = 300;
    let rt = Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(2)
        .heap_objects(4)
        .monitors(1)
        .build()));
    let engine = PessimisticEngine::new(rt);
    let sum = run_producer_consumer(&engine, ITEMS);
    assert_eq!(sum, 7 * ITEMS * (ITEMS + 1) / 2);
}

#[test]
fn recorded_waits_replay_via_sync_edges() {
    // wait/notify programs are DETERMINISTIC here (strict alternation), so
    // record → replay must reproduce the final heap even with sync elided.
    use drink_replay::{Recorder, ReplayEngine};
    const ITEMS: u64 = 200;

    let rt = Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(2)
        .heap_objects(4)
        .monitors(1)
        .build()));
    let recorder = Recorder::for_runtime(&rt, "hybrid");
    let engine = HybridEngine::with_config(
        rt,
        recorder.clone(),
        drink_core::engine::hybrid::HybridConfig::default(),
    );
    let sum = run_producer_consumer(&engine, ITEMS);
    let recorded_heap = engine.rt().heap().snapshot_data();
    let log = recorder.into_log();
    log.validate().unwrap();

    let rt2 = Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(2)
        .heap_objects(4)
        .monitors(1)
        .build()));
    let replayer = ReplayEngine::new(rt2, log);
    let sum2 = run_producer_consumer(&replayer, ITEMS);
    assert_eq!(sum, sum2, "replayed consumption must match");
    assert_eq!(replayer.rt().heap().snapshot_data(), recorded_heap);
}
