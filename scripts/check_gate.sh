#!/bin/bash
# Check gate: the drink-check schedule-exploration harness as a CI step.
#
#   scripts/check_gate.sh [artifact-dir]
#
# Three legs, all required:
#
#   1. Build the harness with the invariant layer compiled in
#      (`check-invariants` is a non-default feature: the plain workspace
#      release build — and hence the hot-path bench — never pays for it).
#   2. Clean fixed-seed smoke matrix: 3 engines x 4 seeds x 2 workloads
#      plus the differential / replay / RS oracles. Must pass.
#   3. Canary: re-run the matrix with a deliberately injected protocol bug
#      (DRINK_INJECT_BUG=skip-flush-before-block). The harness must CATCH
#      it (nonzero exit, artifact written), and `--reproduce` on the saved
#      artifact must fail again — proving the seed+trace actually pins the
#      failure. A canary that passes means the harness has gone blind, and
#      the gate fails.
#
# The canary leg tightens DRINK_SPIN_BUDGET_MS so deliberate protocol
# wedges fail in seconds; `--fail-fast` stops at the first caught cell
# instead of grinding every remaining cell through its watchdog.
set -euo pipefail
cd "$(dirname "$0")/.."

ARTIFACTS="${1:-target/chaos-gate}"
SMOKE=./target/release/chaos_smoke

echo "=== check_gate: build harness (check-invariants)"
cargo build --release -p drink-check --features check-invariants

echo "=== check_gate: clean smoke matrix"
"$SMOKE" --artifact-dir "$ARTIFACTS"

echo "=== check_gate: injected-bug canary (skip-flush-before-block)"
rm -rf "$ARTIFACTS/canary"
if DRINK_SPIN_BUDGET_MS=3000 DRINK_INJECT_BUG=skip-flush-before-block \
    "$SMOKE" --fail-fast --artifact-dir "$ARTIFACTS/canary"; then
  echo "check_gate: FAIL — injected bug was NOT caught (harness is blind)" >&2
  exit 1
fi

artifact="$(ls "$ARTIFACTS"/canary/*.json 2>/dev/null | head -n1 || true)"
if [ -z "$artifact" ]; then
  echo "check_gate: FAIL — canary failed but wrote no artifact" >&2
  exit 1
fi

if ! grep -q '"events"' "$artifact"; then
  echo "check_gate: FAIL — canary artifact has no embedded event timelines" >&2
  exit 1
fi

echo "=== check_gate: trace export / ingest round trip"
cargo build --release -p drink-bench --bin trace
TRACE_OUT="$ARTIFACTS/canary-trace.json"
./target/release/trace --workload chaos_mix --seed 7 --out "$TRACE_OUT" >/dev/null
./target/release/trace --check "$TRACE_OUT"

echo "=== check_gate: reproduce canary artifact ($artifact)"
if DRINK_SPIN_BUDGET_MS=3000 DRINK_INJECT_BUG=skip-flush-before-block \
    "$SMOKE" --reproduce "$artifact"; then
  echo "check_gate: FAIL — canary artifact did not reproduce" >&2
  exit 1
fi

echo "=== check_gate: OK (bug caught, artifact reproduces)"
