#!/bin/bash
# Check gate: the drink-check schedule-exploration harness as a CI step.
#
#   scripts/check_gate.sh [artifact-dir]
#
# Three legs, all required:
#
#   1. Build the harness with the invariant layer compiled in
#      (`check-invariants` is a non-default feature: the plain workspace
#      release build — and hence the hot-path bench — never pays for it).
#   2. Clean fixed-seed smoke matrix: 3 engines x 4 seeds x 4 workloads
#      plus the differential / seqlock / replay / RS oracles. Must pass.
#   3. Canaries: re-run the matrix with a deliberately injected protocol
#      bug. Three bugs, each its own leg:
#        - skip-flush-before-block (lock-buffer flush dropped before a
#          blocking safe point);
#        - skip-version-bump (state-word installs stop advancing the
#          per-object version counter, silently breaking the seqlock read
#          protocol of DESIGN.md s12);
#        - skip-epoch-stamp (accesses stop stamping their shard's access
#          epoch, silently un-sounding the fan-out shard skip of
#          DESIGN.md s14 — caught by the receiver-side stamped-request
#          invariant on the 16-thread chaosShard spec and by the
#          shard-skip oracle's stamp-mask comparison).
#      The harness must CATCH each (nonzero exit, artifact written), and
#      `--reproduce` on the saved artifact must fail again — proving the
#      seed+trace actually pins the failure. A canary that passes means
#      the harness has gone blind, and the gate fails.
#   4. Stall-responder fault legs (DRINK_INJECT_FAULT=stall-responder:<ms>,
#      DESIGN.md s13). Unlike an injected *bug*, the fault is a
#      legal-but-hostile environment: a victim's responding-safe-point loop
#      freezes for <ms> whenever it has pending coordination requests.
#        - Degradation leg: a 200 ms stall — longer than chaosAdapt's 150 ms
#          coordination deadline — against one full matrix seed. The run
#          must PASS: deadlines fire, the controller force-demotes the
#          stalled objects to the pessimistic protocol (which needs no
#          responder), and every oracle still agrees. A hang or oracle
#          failure here means the degradation ladder is broken.
#        - Catch leg: a 4 s stall with a 3 s spin budget and no deadline
#          relief on most workloads. The watchdog must CATCH the wedged
#          roundtrip (nonzero exit, artifact), and `--reproduce` under the
#          same fault must fail again.
#
# The canary leg tightens DRINK_SPIN_BUDGET_MS so deliberate protocol
# wedges fail in seconds; `--fail-fast` stops at the first caught cell
# instead of grinding every remaining cell through its watchdog.
set -euo pipefail
cd "$(dirname "$0")/.."

ARTIFACTS="${1:-target/chaos-gate}"
SMOKE=./target/release/chaos_smoke

echo "=== check_gate: build harness (check-invariants)"
cargo build --release -p drink-check --features check-invariants

echo "=== check_gate: clean smoke matrix"
"$SMOKE" --artifact-dir "$ARTIFACTS"

echo "=== check_gate: injected-bug canary (skip-flush-before-block)"
rm -rf "$ARTIFACTS/canary"
if DRINK_SPIN_BUDGET_MS=3000 DRINK_INJECT_BUG=skip-flush-before-block \
    "$SMOKE" --fail-fast --artifact-dir "$ARTIFACTS/canary"; then
  echo "check_gate: FAIL — injected bug was NOT caught (harness is blind)" >&2
  exit 1
fi

artifact="$(ls "$ARTIFACTS"/canary/*.json 2>/dev/null | head -n1 || true)"
if [ -z "$artifact" ]; then
  echo "check_gate: FAIL — canary failed but wrote no artifact" >&2
  exit 1
fi

if ! grep -q '"events"' "$artifact"; then
  echo "check_gate: FAIL — canary artifact has no embedded event timelines" >&2
  exit 1
fi

echo "=== check_gate: injected-bug canary (skip-version-bump)"
rm -rf "$ARTIFACTS/canary-version"
if DRINK_SPIN_BUDGET_MS=3000 DRINK_INJECT_BUG=skip-version-bump \
    "$SMOKE" --fail-fast --artifact-dir "$ARTIFACTS/canary-version"; then
  echo "check_gate: FAIL — skip-version-bump was NOT caught (seqlock oracle blind)" >&2
  exit 1
fi

version_artifact="$(ls "$ARTIFACTS"/canary-version/*.json 2>/dev/null | head -n1 || true)"
if [ -z "$version_artifact" ]; then
  echo "check_gate: FAIL — version canary failed but wrote no artifact" >&2
  exit 1
fi

if ! grep -q '"events"' "$version_artifact"; then
  echo "check_gate: FAIL — version canary artifact has no embedded event timelines" >&2
  exit 1
fi

echo "=== check_gate: injected-bug canary (skip-epoch-stamp)"
rm -rf "$ARTIFACTS/canary-epoch"
if DRINK_SPIN_BUDGET_MS=3000 DRINK_INJECT_BUG=skip-epoch-stamp \
    "$SMOKE" --fail-fast --artifact-dir "$ARTIFACTS/canary-epoch"; then
  echo "check_gate: FAIL — skip-epoch-stamp was NOT caught (shard-skip oracle blind)" >&2
  exit 1
fi

epoch_artifact="$(ls "$ARTIFACTS"/canary-epoch/*.json 2>/dev/null | head -n1 || true)"
if [ -z "$epoch_artifact" ]; then
  echo "check_gate: FAIL — epoch canary failed but wrote no artifact" >&2
  exit 1
fi

if ! grep -q '"events"' "$epoch_artifact"; then
  echo "check_gate: FAIL — epoch canary artifact has no embedded event timelines" >&2
  exit 1
fi

echo "=== check_gate: trace export / ingest round trip"
cargo build --release -p drink-bench --bin trace
TRACE_OUT="$ARTIFACTS/canary-trace.json"
./target/release/trace --workload chaos_mix --seed 7 --out "$TRACE_OUT" >/dev/null
./target/release/trace --check "$TRACE_OUT"

echo "=== check_gate: reproduce canary artifact ($artifact)"
if DRINK_SPIN_BUDGET_MS=3000 DRINK_INJECT_BUG=skip-flush-before-block \
    "$SMOKE" --reproduce "$artifact"; then
  echo "check_gate: FAIL — canary artifact did not reproduce" >&2
  exit 1
fi

echo "=== check_gate: reproduce version canary artifact ($version_artifact)"
if DRINK_SPIN_BUDGET_MS=3000 DRINK_INJECT_BUG=skip-version-bump \
    "$SMOKE" --reproduce "$version_artifact"; then
  echo "check_gate: FAIL — version canary artifact did not reproduce" >&2
  exit 1
fi

echo "=== check_gate: reproduce epoch canary artifact ($epoch_artifact)"
if DRINK_SPIN_BUDGET_MS=3000 DRINK_INJECT_BUG=skip-epoch-stamp \
    "$SMOKE" --reproduce "$epoch_artifact"; then
  echo "check_gate: FAIL — epoch canary artifact did not reproduce" >&2
  exit 1
fi

echo "=== check_gate: stall-responder degradation leg (200ms stall, must pass)"
if ! DRINK_INJECT_FAULT=stall-responder:200 \
    "$SMOKE" --seeds 0x1 --artifact-dir "$ARTIFACTS/stall-degrade"; then
  echo "check_gate: FAIL — matrix does not survive a 200ms responder stall" >&2
  echo "            (deadline/demotion ladder broken: see DESIGN.md s13)" >&2
  exit 1
fi

echo "=== check_gate: stall-responder catch leg (4s stall vs 3s budget, must be caught)"
rm -rf "$ARTIFACTS/stall-canary"
if DRINK_SPIN_BUDGET_MS=3000 DRINK_INJECT_FAULT=stall-responder:4000 \
    "$SMOKE" --seeds 0x1 --fail-fast --artifact-dir "$ARTIFACTS/stall-canary"; then
  echo "check_gate: FAIL — 4s responder stall was NOT caught (watchdog blind)" >&2
  exit 1
fi

stall_artifact="$(ls "$ARTIFACTS"/stall-canary/*.json 2>/dev/null | head -n1 || true)"
if [ -z "$stall_artifact" ]; then
  echo "check_gate: FAIL — stall canary failed but wrote no artifact" >&2
  exit 1
fi

if ! grep -q '"events"' "$stall_artifact"; then
  echo "check_gate: FAIL — stall canary artifact has no embedded event timelines" >&2
  exit 1
fi

echo "=== check_gate: reproduce stall canary artifact ($stall_artifact)"
if DRINK_SPIN_BUDGET_MS=3000 DRINK_INJECT_FAULT=stall-responder:4000 \
    "$SMOKE" --reproduce "$stall_artifact"; then
  echo "check_gate: FAIL — stall canary artifact did not reproduce" >&2
  exit 1
fi

echo "=== check_gate: OK (bugs and stall caught, artifacts reproduce, ladder degrades gracefully)"
