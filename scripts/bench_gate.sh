#!/bin/bash
# Bench gate: release build + tier-1 tests + chaos check gate + the two
# fixed-iteration microbenches (hot path, multi-thread contention), each
# compared against the checked-in baseline JSON by `bench_compare`. The gate
# fails on build/test/check failure or when any bench row's median regresses
# more than BENCH_GATE_THRESHOLD percent (default 25) against its baseline;
# on success the refreshed JSONs are moved into place for commit.
#
#   scripts/bench_gate.sh [hotpath_out.json] [contention_out.json]
#
# A missing baseline (first run of a new bench) skips the comparison for
# that report; fixed iteration counts make runs directly comparable across
# commits on the same host.
set -euo pipefail
cd "$(dirname "$0")/.."

HOTPATH_OUT="${1:-BENCH_hotpath.json}"
CONTENTION_OUT="${2:-BENCH_contention.json}"
THRESHOLD="${BENCH_GATE_THRESHOLD:-25}"

echo "=== bench_gate: release build"
cargo build --release

echo "=== bench_gate: tier-1 test suite"
cargo test -q

echo "=== bench_gate: chaos check gate"
scripts/check_gate.sh

run_and_compare() {
    local bin="$1" out="$2"
    shift 2
    local tmp
    tmp="$(mktemp "/tmp/BENCH_${bin}.XXXXXX.json")"
    echo "=== bench_gate: $bin microbench -> $out"
    "./target/release/$bin" "$tmp"
    if [ -f "$out" ]; then
        echo "=== bench_gate: $bin vs baseline $out (threshold ${THRESHOLD}%)"
        ./target/release/bench_compare "$out" "$tmp" --threshold "$THRESHOLD" "$@"
    else
        echo "=== bench_gate: no baseline $out; skipping comparison"
    fi
    mv "$tmp" "$out"
}

# The tracing-on row is advisory: ring-buffer stores on the hot path are an
# expected, opt-in cost (DESIGN.md §11). The tracing-off row stays gated —
# it is the evidence the disabled trace valve costs one predicted branch.
run_and_compare hotpath "$HOTPATH_OUT" --advisory trace_on_
# The always-optimistic rows stay ADVISORY. PR 6 re-measured them 5 runs in
# a row to decide whether to gate them: t2 spanned 8.7-9.6us, t4 4.3-14.4us,
# and t8 278ns-16.9us — still bimodal, so the flip-to-gated condition (stable
# across 5 consecutive runs) is not met. Diagnosis (the contention binary now
# prints FanoutComplete p50/p99 per row as evidence): on this 1-core host an
# explicit all-peer roundtrip is scheduler-rotation-bound — the requester
# must wait for every RUNNING peer to get a quantum — while runs whose peers
# happen to be parked at safepoints resolve implicitly and come in ~50x
# faster. The spread is host scheduling, not an engine regression; the new
# seqlock rows (rdsh_read_mostly_*) are coordination-free by construction,
# stable at ~11ns, and ARE gated (DESIGN.md §10, §12).
run_and_compare contention "$CONTENTION_OUT" --advisory opt_access_

echo "=== bench_gate: OK"
