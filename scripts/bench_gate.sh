#!/bin/bash
# Bench gate: release build + tier-1 tests + fixed-iteration hot-path
# microbench. Writes BENCH_hotpath.json (repo root by default; pass a path
# to override) and fails if the build or tests fail, so CI can gate merges
# on "tests green and hot-path numbers emitted".
#
#   scripts/bench_gate.sh [out.json]
#
# Compare the emitted ns/op rows against the previous run by hand (or with
# jq); the fixed iteration counts make runs directly comparable across
# commits on the same host.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_hotpath.json}"

echo "=== bench_gate: release build"
cargo build --release

echo "=== bench_gate: tier-1 test suite"
cargo test -q

echo "=== bench_gate: chaos check gate"
scripts/check_gate.sh

echo "=== bench_gate: hot-path microbench -> $OUT"
./target/release/hotpath "$OUT"

echo "=== bench_gate: OK"
