#!/bin/bash
# Bench gate: release build + tier-1 tests + chaos check gate + the two
# fixed-iteration microbenches (hot path, multi-thread contention) + the
# open-loop serve macrobench, each compared against the checked-in baseline
# JSON by `bench_compare`. The gate fails on build/test/check failure or
# when any bench row's median regresses more than BENCH_GATE_THRESHOLD
# percent (default 25) against its baseline (the serve macrobench uses its
# own BENCH_GATE_SERVE_THRESHOLD, default 100: its rows are best-of-trials
# extremes quantized by log2 latency buckets on a noisy shared host, so only
# a binary-order-of-magnitude regression is signal); on success the
# refreshed JSONs are moved into place for commit.
#
#   scripts/bench_gate.sh [hotpath_out.json] [contention_out.json] [serve_out.json]
#
# A missing baseline (first run of a new bench) skips the comparison for
# that report; fixed iteration counts make runs directly comparable across
# commits on the same host.
set -euo pipefail
cd "$(dirname "$0")/.."

HOTPATH_OUT="${1:-BENCH_hotpath.json}"
CONTENTION_OUT="${2:-BENCH_contention.json}"
SERVE_OUT="${3:-BENCH_serve.json}"
THRESHOLD="${BENCH_GATE_THRESHOLD:-25}"
SERVE_THRESHOLD="${BENCH_GATE_SERVE_THRESHOLD:-100}"

echo "=== bench_gate: release build"
cargo build --release

echo "=== bench_gate: tier-1 test suite"
cargo test -q

echo "=== bench_gate: chaos check gate"
scripts/check_gate.sh

run_and_compare() {
    local bin="$1" out="$2"
    shift 2
    local tmp
    tmp="$(mktemp "/tmp/BENCH_${bin}.XXXXXX.json")"
    echo "=== bench_gate: $bin microbench -> $out"
    "./target/release/$bin" "$tmp"
    if [ -f "$out" ]; then
        echo "=== bench_gate: $bin vs baseline $out (threshold ${THRESHOLD}%)"
        ./target/release/bench_compare "$out" "$tmp" --threshold "$THRESHOLD" "$@"
    else
        echo "=== bench_gate: no baseline $out; skipping comparison"
    fi
    mv "$tmp" "$out"
}

# Advisory status lives in the reports themselves (schema v4): each bench
# binary marks its known-unstable rows (e.g. trace_on_opt_write) at the
# emission site, and `bench_compare` refuses (exit 2) if a previously-gated
# baseline row arrives marked advisory. The opt_access_*/adapt_access_* rows
# that PR 6 kept advisory (bimodal 278ns-16.9us under coordination storms)
# are gated since the online demotion controller (DESIGN.md §13) collapsed
# them to stable near-pessimistic values.
#
# --scaling gates the thread-width curves (DESIGN.md §14) on doubling
# ratios, an absolute property of the fresh run:
#   * rdsh_conflict_fanout_skip_N holds the sharer set at 4 while the
#     registered count doubles, so its roundtrip-dominated latency must be
#     width-independent: at most 2x per doubling (expected ~1x);
#   * fanout_snapshot_skip_tN is the pure snapshot walk — one epoch load
#     per peer, linear with a tiny constant: 3x per doubling;
#   * fanout_snapshot_blocked_tN and rdsh_conflict_fanout_N do a status
#     CAS or a full roundtrip per peer (~2x per doubling); 6x of headroom
#     absorbs scheduler noise on oversubscribed single-core CI hosts.
run_and_compare hotpath "$HOTPATH_OUT" \
    --scaling fanout_snapshot_blocked_t:6.0 \
    --scaling fanout_snapshot_skip_t:3.0
run_and_compare contention "$CONTENTION_OUT" \
    --scaling rdsh_conflict_fanout_:6.0 \
    --scaling rdsh_conflict_fanout_skip_:2.0

# The open-loop KV-store macrobench (DESIGN.md §15). The smoke leg proves
# the rate-limited pacing path, store-linearizability check and report
# round trip end to end; the bench leg emits the gated matrix (4 engines x
# {8,16} workers: saturated throughput, higher-is-better, plus p99 sojourn).
echo "=== bench_gate: drink-serve smoke"
SERVE_SMOKE_TMP="$(mktemp /tmp/SERVE_smoke.XXXXXX.json)"
./target/release/drink-serve --smoke "$SERVE_SMOKE_TMP"
rm -f "$SERVE_SMOKE_TMP"

SERVE_TMP="$(mktemp /tmp/BENCH_serve.XXXXXX.json)"
echo "=== bench_gate: drink-serve macrobench -> $SERVE_OUT"
./target/release/drink-serve --bench "$SERVE_TMP" --trials 3
if [ -f "$SERVE_OUT" ]; then
    echo "=== bench_gate: drink-serve vs baseline $SERVE_OUT (threshold ${SERVE_THRESHOLD}%)"
    ./target/release/bench_compare "$SERVE_OUT" "$SERVE_TMP" --threshold "$SERVE_THRESHOLD"
else
    echo "=== bench_gate: no baseline $SERVE_OUT; skipping comparison"
fi
mv "$SERVE_TMP" "$SERVE_OUT"

echo "=== bench_gate: OK"
