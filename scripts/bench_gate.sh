#!/bin/bash
# Bench gate: release build + tier-1 tests + chaos check gate + the two
# fixed-iteration microbenches (hot path, multi-thread contention), each
# compared against the checked-in baseline JSON by `bench_compare`. The gate
# fails on build/test/check failure or when any bench row's median regresses
# more than BENCH_GATE_THRESHOLD percent (default 25) against its baseline;
# on success the refreshed JSONs are moved into place for commit.
#
#   scripts/bench_gate.sh [hotpath_out.json] [contention_out.json]
#
# A missing baseline (first run of a new bench) skips the comparison for
# that report; fixed iteration counts make runs directly comparable across
# commits on the same host.
set -euo pipefail
cd "$(dirname "$0")/.."

HOTPATH_OUT="${1:-BENCH_hotpath.json}"
CONTENTION_OUT="${2:-BENCH_contention.json}"
THRESHOLD="${BENCH_GATE_THRESHOLD:-25}"

echo "=== bench_gate: release build"
cargo build --release

echo "=== bench_gate: tier-1 test suite"
cargo test -q

echo "=== bench_gate: chaos check gate"
scripts/check_gate.sh

run_and_compare() {
    local bin="$1" out="$2"
    shift 2
    local tmp
    tmp="$(mktemp "/tmp/BENCH_${bin}.XXXXXX.json")"
    echo "=== bench_gate: $bin microbench -> $out"
    "./target/release/$bin" "$tmp"
    if [ -f "$out" ]; then
        echo "=== bench_gate: $bin vs baseline $out (threshold ${THRESHOLD}%)"
        ./target/release/bench_compare "$out" "$tmp" --threshold "$THRESHOLD" "$@"
    else
        echo "=== bench_gate: no baseline $out; skipping comparison"
    fi
    mv "$tmp" "$out"
}

# Advisory status lives in the reports themselves (schema v3): each bench
# binary marks its known-unstable rows (e.g. trace_on_opt_write) at the
# emission site, and `bench_compare` refuses (exit 2) if a previously-gated
# baseline row arrives marked advisory. The opt_access_*/adapt_access_* rows
# that PR 6 kept advisory (bimodal 278ns-16.9us under coordination storms)
# are gated since the online demotion controller (DESIGN.md §13) collapsed
# them to stable near-pessimistic values.
run_and_compare hotpath "$HOTPATH_OUT"
run_and_compare contention "$CONTENTION_OUT"

echo "=== bench_gate: OK"
