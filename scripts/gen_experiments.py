#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from the files in results/."""
import datetime

def load(name):
    with open(f'results/{name}.txt') as f:
        lines = f.read().rstrip().split('\n')
    return '\n'.join(lines[4:])

doc = f"""# EXPERIMENTS — paper vs. measured

Full regeneration of every table and figure in the paper's evaluation (§7),
produced by `cargo run --release -p drink-bench --bin <experiment>` (see
DESIGN.md's experiment index E1–E10). Raw outputs live in `results/`.

**Host**: single CPU core (!), Linux, Rust 1.95 release build. The paper used
a 32-core Xeon E5-4620 under Jikes RVM. Two consequences run through
everything below:

1. **Wall-clock numbers are shapes, not magnitudes.** We report a *model*
   overhead alongside wall clock: measured transition counts priced at the
   paper's own §2.2 cycle costs against a 200-cycle/access work budget. The
   model number is platform-independent and is the primary basis for shape
   comparison.
2. **Two paper effects cannot materialize on one core**: pessimistic
   tracking's remote-cache-miss cost (its CASes never ping-pong cache lines,
   so its wall overhead is far below the paper's 340%), and spontaneous
   fine-grained interleaving (the stress microbenchmarks insert explicit
   yields to recover it; see E5).

Single-run wall numbers on a busy 1-core box carry noise of roughly ±15
percentage points; isolated outliers are flagged per experiment.

---

## E1 — §2.2 per-transition cost table

```
{load('cost_table')}
```

**Paper**: 150 / 47 / 9 200 / 360 cycles (pessimistic / same-state /
explicit / implicit). **Agreement**: the ordering and the magnitude gaps
reproduce — same-state is a few ns and the cheapest by far; pessimistic is an
atomic-op multiple of it; implicit coordination costs a small constant more
than pessimistic; explicit coordination is *orders of magnitude* above
everything (here even more than the paper's ~196×, because a roundtrip on one
core is two scheduler trips rather than a cache-line trip). This gap is the
entire premise of the adaptive policy.

## E2 — Figure 6, per-object conflict CDF (optimistic tracking)

```
{load('fig6_conflict_cdf')}
```

**Agreement**: the paper's two key readings hold. (1) For every program, the
value at x = 4 is a tiny share of all accesses — so moving an object to
pessimistic states after its 4th conflict wastes almost nothing. (2) For
high-conflict programs (xalan6/9, pjbb2005, hsqldb6, avrora9) most conflicts
sit far to the right (the x = 4 value is a small fraction of the maximum), so
per-object profiling "catches" most conflicting accesses in advance — the
§7.3 limit-study conclusion. Programs with conflict rate < 0.0001% are
excluded, as in the paper.

## E3 — Table 2, state transitions (hybrid vs. optimistic alone)

```
{load('table2_transitions')}
```

**Agreement** (counts are ~10³–10⁴× smaller than the paper's since the
workloads are scaled; compare *ratios*):

* the adaptive policy's primary goal — cutting conflicting transitions —
  lands in the paper's 43–98% band for the high-conflict programs (roughly
  −90% for hsqldb6, −95% for xalan6/9 here);
* low-conflict programs (jython9, luindex9, lusearch6/9) are untouched, with
  zero or near-zero pessimistic transitions — the policy never bothers them;
* only a small fraction of same-state transitions become pessimistic, and a
  meaningful share of pessimistic transitions is reentrant (atomic-op-free);
* contended transitions concentrate in the racy programs (avrora9,
  pjbb2005), exactly the paper's object-level-data-race attribution.

Divergences: our %reentrant is generally below the paper's (our scaled
workloads revisit locked objects fewer times per flush window), and
avrora9's contended count is proportionally smaller (our racy accesses are
calibrated to its *conflict* rate, not its contention rate).

## E4 — Figure 7, tracking-alone overhead

```
{load('fig7_tracking_overhead')}
```

**Agreement** (cells are wall% / model%):

* **hybrid lands on the paper's number**: hybrid's wall geomean ≈ the paper's
  22% average, with the model value bracketing it;
* **the headline reductions reproduce**: xalan6, xalan9 and pjbb2005 each
  drop from ~180–200% under optimistic tracking to ~25–40% under hybrid
  (paper: 65→24, 19→5, 110→49 — same direction, larger magnitudes because our
  explicit roundtrips are relatively costlier, see E1);
* **low-conflict programs are unharmed**, and `Hyb(∞)` (costs-only) tracks
  optimistic within noise (paper: +2.3%);
* **Ideal bounds hybrid from below** (paper 14 vs. 22);
* **hsqldb6 is the known exception**: its conflicts are mostly implicit
  (≈60% here), and implicit coordination costs about what a pessimistic
  transition does, so hybrid helps it less than its conflict count suggests —
  the paper makes exactly this point.

Divergences: pessimistic tracking's wall geomean sits far below the paper's
340% — on one core its CASes never incur remote cache misses. The model
column (≈flat 75%) shows what the counts would cost at the paper's prices;
the *insensitivity* of pessimistic tracking to conflict rates — the property
the paper emphasizes — is clearly visible either way. sunflow9 runs hot for
every engine (read-share-heavy profile; the paper also flags sunflow9 as its
high-variance outlier), and isolated per-cell outliers are single-run noise.

## E5 — Figure 8, syncInc / racyInc stress tests

```
{load('fig8_microbench')}
```

**Agreement**: `syncInc` is the paper's showcase and reproduces sharply —
optimistic tracking collapses (≈1100% wall; the paper says ≈1200%) because
every increment is a conflicting transition with roundtrip coordination,
while hybrid moves the counter to pessimistic states and transfers ownership
by CAS: ~20% wall, model ≈ the paper's 84%. Pessimistic tracking's wall
number is a single-core artifact (see host note); its model value matches the
paper's story that it behaves like hybrid here.

`racyInc` is hybrid's worst case. The paper measured hybrid at ~3.5× the
optimistic cost (4 300% vs 1 200%) because contended pessimistic transitions
repeatedly re-coordinate; in our run hybrid lands *at* optimistic cost
(~1 000%) rather than above it — our contended retry usually succeeds after
one roundtrip on a single core, where the paper's 8 threads re-race on 32
real cores. The qualitative claim that survives: hybrid provides *no
benefit* under pervasive object-level races, and the §7.5 policy extension
(contended-cutoff) keeps it at optimistic-equivalent cost.

## E6 — Figure 9(a), dependence recorders and replayers

```
{load('fig9a_record_replay')}
```

**Agreement**: the hybrid recorder beats the optimistic recorder overall
(paper: 41 vs. 46 geomean) with the gains concentrated exactly where the
paper finds them — xalan6, xalan9, pjbb2005 all drop by 4–5×. Our gap is
larger than the paper's because our explicit roundtrips are relatively
costlier (E1). Replay overheads land in the 26–97% range; the hybrid
replayer is not consistently slower than the optimistic one here (paper: 24
vs. 20) since both of our replayers use the same clock machinery. Every row
also re-asserts bit-identical replayed heaps — the harness doubles as a
full-scale soundness check. (The paper's replayer fails on 2 of 13 programs;
ours replays all 13.)

## E7 — Figure 9(b), region serializability enforcers

```
{load('fig9b_rs_enforcer')}
```

**Agreement**: hybrid ≤ optimistic overall, with the big three again being
xalan6, xalan9 and pjbb2005 (each roughly halved) — the paper's ordering
(39 vs. 34, biggest wins on the same three programs). Restarts concentrate
in the racy programs, mirroring the paper's contended-transition analysis.
Absolute overheads are several × the paper's: our regions are driven through
a closure-based API with per-region undo/access bookkeeping, where the
paper's enforcer compiles specialized code into each region.

## E8 — §7.3 adaptive-policy sensitivity

```
{load('e8_policy_sweep')}
```

**Agreement**: precisely the paper's conclusions. Cutoff_confl = 1–4 already
eliminates ~95% of conflicting transitions; larger cutoffs give progressively
less until ∞ (= optimistic behaviour); K_confl across 20–1 600 and Inertia
across 20–1 600 barely move anything ("performance is not very sensitive to
the other parameters").

## E9 — §7.1 extraneous-contention ablation

```
{load('e9_wrex_rlock_ablation')}
```

**Agreement**: the paper's prototype omits `WrExRLock` (self-reads
write-lock) and validates the omission with an unsound diagnostic. Our full
model shows the same picture from the other side: the prototype encoding
produces somewhat more contended transitions than the full model, and the
unsound `RdExRLock` downgrade performs like the full model — i.e., the
spurious contention the omission causes is real but minor, matching the
paper's "not encountering significant spurious contention".

## E10 — §3.1 deferred-unlocking ablation (beyond the paper's artifacts)

```
{load('e10_deferred_unlock_ablation')}
```

The paper's *initial design* unlocked pessimistic states eagerly after every
access and "added significant overhead"; deferred unlocking is the §3.1
insight that replaced it. Re-enacting the strawman shows why: eager unlocking
performs thousands of extra per-access state releases (the `unlocks` column;
deferred unlocking batches them at PSROs) and loses every reentrant
transition. On `syncInc` the model gap is ~17 points; on the profile
workloads pessimistic traffic is a smaller share of accesses so the gap is
proportionally smaller — and the eager design additionally forfeits the
hybrid *recorder* entirely (release-clock edges require flush points pinned
to PSROs).

## Workload calibration (supporting evidence, not a paper artifact)

```
{load('profiles_calibration')}
```

Every profile's explicit-conflict rate lands within roughly half an order of
magnitude of the paper program it models (the `ratio` column), the
{{low, mid, high, racy}} clustering is preserved, and hsqldb6 reproduces its
implicit-heavy character (most of its conflicts resolve implicitly). This is
what licenses the per-program comparisons above.

---

## Summary of claims checked

| Paper claim | Status |
|---|---|
| Hybrid consistently outperforms pessimistic tracking | ✅ (model metric; wall too, with the single-core caveat on pessimistic costs) |
| Hybrid ≫ optimistic for high-conflict programs (xalan6/9, pjbb2005) | ✅ 3–8× overhead reductions |
| Hybrid ≈ optimistic for low-conflict programs | ✅ within noise |
| Adaptive policy cuts conflicting transitions 43–98% on high-conflict programs | ✅ 90–95% here |
| Per-object profiling catches most conflicts (Fig 6 limit study) | ✅ |
| Policy insensitive to K_confl/Inertia; small Cutoff suffices | ✅ |
| syncInc: hybrid ~15× cheaper than optimistic | ✅ (~50× here) |
| racyInc: hybrid gains nothing (worst case) | ✅ (equal-cost rather than worse; single-core retry effect) |
| hsqldb6 barely helped (implicit coordination) | ✅ helped less than its conflict reduction implies |
| Hybrid recorder cheaper than optimistic recorder; same dependences | ✅ + bit-identical replays on all 13 programs |
| Hybrid replayer slightly slower than optimistic replayer | ➖ not reproduced (shared clock machinery) |
| Hybrid RS enforcer cheaper than optimistic RS enforcer, same win pattern | ✅ |
| WrExRLock omission harmless (§7.1) | ✅ |
| Deferred unlocking beats the initial eager design (§3.1) | ✅ structurally; model gap largest where pessimistic traffic is dense |
| Pessimistic wall cost ≈ 340% | ❌ not reproducible on one core (model: flat, conflict-insensitive — the qualitative property — is reproduced) |

*Generated {datetime.date.today().isoformat()} from the committed `results/` run.*
"""
open('EXPERIMENTS.md','w').write(doc)
print("EXPERIMENTS.md written:", len(doc), "bytes")
