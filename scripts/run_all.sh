#!/bin/bash
# Regenerate every table/figure of the paper into results/ (then run
# scripts/gen_experiments.py to refresh EXPERIMENTS.md).
cd /root/repo
for bin in profiles_calibration cost_table fig6_conflict_cdf table2_transitions fig7_tracking_overhead fig8_microbench fig9a_record_replay fig9b_rs_enforcer e8_policy_sweep e9_wrex_rlock_ablation e10_deferred_unlock_ablation; do
  echo "=== running $bin"
  timeout 1200 ./target/release/$bin > results/$bin.txt 2>&1
  echo "=== $bin done ($?)"
done
echo ALL_DONE
